package cluster

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/explore"
	"repro/internal/space"
	"repro/internal/wire"
)

// This file is the job-survival seam of the leaderless control plane:
// a distributed sweep can start from a replicated mid-flight state —
// the segments of the design list not yet covered by the shard ledger,
// plus the latest merged cumulative snapshot — instead of from zero.
// Because the collectors are associative and snapshots cumulative, a
// peer that adopts an orphaned job and resumes it here produces the
// exact answer the dead owner would have: every design merges exactly
// once across the handoff (the ledger excludes the merged ranges, and
// the PR 9 invariant — dedup at the coordinator, not the collector —
// guarantees it within each run).

// Segment is one contiguous, not-yet-merged range of a sweep's design
// list. Start is the range's offset in the full list; preserving it
// keeps candidate indices — and therefore top-K tie-breaking — identical
// to the uninterrupted run.
type Segment struct {
	Start   int
	Designs []space.Config
}

// Seed is the replicated merged-so-far state a resumed sweep starts
// from: cumulative counters plus the latest merged snapshot (with
// original design indices, see Progress.Indexed).
type Seed struct {
	Evaluated  int
	Feasible   int
	Shards     int
	Candidates []IndexedCandidate
}

// SegmentsAfter computes the complement of a merged-shard ledger over
// the full design list — the segments an adopter still has to dispatch.
// The ledger must be sorted and coalesced (wire.AddRange maintains
// both); out-of-bounds ranges are clamped.
func SegmentsAfter(designs []space.Config, done []wire.ShardRange) []Segment {
	var segs []Segment
	pos := 0
	for _, r := range done {
		start, end := r.Start, r.Start+r.Count
		if start > len(designs) {
			start = len(designs)
		}
		if end > len(designs) {
			end = len(designs)
		}
		if start > pos {
			segs = append(segs, Segment{Start: pos, Designs: designs[pos:start]})
		}
		if end > pos {
			pos = end
		}
	}
	if pos < len(designs) {
		segs = append(segs, Segment{Start: pos, Designs: designs[pos:]})
	}
	return segs
}

func segmentsTotal(segs []Segment) int {
	n := 0
	for _, s := range segs {
		n += len(s.Designs)
	}
	return n
}

// ParetoResumeObserved runs (or resumes) a distributed frontier sweep
// over the given segments, starting from seed. ParetoObserved is the
// fresh-sweep special case (one segment, empty seed). With every
// segment already merged it returns the seed's answer directly.
func (c *Coordinator) ParetoResumeObserved(ctx context.Context, q Query, segments []Segment, seed Seed, obs Observer) (*ParetoResult, error) {
	merged := explore.NewFrontierCollector()
	for _, ic := range seed.Candidates {
		merged.Collect(ic.Index, ic.Candidate)
	}
	var mu sync.Mutex
	evaluated := seed.Evaluated
	mergedShards := seed.Shards
	if segmentsTotal(segments) == 0 {
		if seed.Shards == 0 {
			return nil, fmt.Errorf("cluster: no designs to sweep")
		}
		return &ParetoResult{Evaluated: evaluated, Frontier: merged.Frontier()}, nil
	}
	shards, retries, err := c.run(ctx, q, segments, Transport.Pareto, func(worker string, s Shard, p *Partial) {
		// The rebuilt per-shard collector exists to feed Merge; its seen
		// counter covers only the shipped frontier, so the authoritative
		// design count is the summed partial.Evaluated, not merged.Seen().
		part := explore.NewFrontierCollector()
		for _, ic := range p.Candidates {
			part.Collect(ic.Index, ic.Candidate)
		}
		c.metrics.mergeSize.Observe(float64(len(p.Candidates)))
		mu.Lock()
		defer mu.Unlock()
		evaluated += p.Evaluated
		mergedShards++
		merged.Merge(part)
		if obs != nil {
			// Feasible stays zero: feasibility is a constrained-sweep
			// notion with no meaning on a frontier job.
			obs(Progress{
				Worker:     worker,
				Delta:      p.Evaluated,
				Evaluated:  evaluated,
				Shards:     mergedShards,
				Workers:    c.memberCount(),
				Candidates: merged.Frontier(),
				ShardStart: s.Start,
				ShardLen:   len(s.Designs),
			})
		}
	})
	if err != nil {
		return nil, err
	}
	return &ParetoResult{
		Evaluated: evaluated,
		Frontier:  merged.Frontier(),
		Shards:    shards,
		Retries:   retries,
	}, nil
}

// SweepResumeObserved runs (or resumes) a distributed constrained top-K
// sweep over the given segments, starting from seed. Seed candidates
// re-enter the collector with their original indices, so tie-breaking —
// and therefore the final top K — is bit-identical to the uninterrupted
// run.
func (c *Coordinator) SweepResumeObserved(ctx context.Context, q Query, segments []Segment, seed Seed, obs Observer) (*SweepResult, error) {
	if q.TopK <= 0 {
		q.TopK = 10
	}
	merged := explore.NewTopK(q.TopK, q.Objective, q.Constraints)
	for _, ic := range seed.Candidates {
		merged.Collect(ic.Index, ic.Candidate)
	}
	var mu sync.Mutex
	evaluated, feasible := seed.Evaluated, seed.Feasible
	mergedShards := seed.Shards
	if segmentsTotal(segments) == 0 {
		if seed.Shards == 0 {
			return nil, fmt.Errorf("cluster: no designs to sweep")
		}
		return &SweepResult{Evaluated: evaluated, Feasible: feasible, Candidates: merged.Results()}, nil
	}
	shards, retries, err := c.run(ctx, q, segments, Transport.Sweep, func(worker string, s Shard, p *Partial) {
		part := explore.NewTopK(q.TopK, q.Objective, q.Constraints)
		for _, ic := range p.Candidates {
			part.Collect(ic.Index, ic.Candidate)
		}
		c.metrics.mergeSize.Observe(float64(len(p.Candidates)))
		mu.Lock()
		defer mu.Unlock()
		// The partial's counters cover the whole shard; the rebuilt
		// collector saw only its k survivors, so the response counts come
		// from the partial sums, not the merged collector.
		evaluated += p.Evaluated
		feasible += p.Feasible
		mergedShards++
		merged.Merge(part)
		if obs != nil {
			obs(Progress{
				Worker:     worker,
				Delta:      p.Evaluated,
				Evaluated:  evaluated,
				Feasible:   feasible,
				Shards:     mergedShards,
				Workers:    c.memberCount(),
				Candidates: merged.Results(),
				ShardStart: s.Start,
				ShardLen:   len(s.Designs),
				Indexed:    indexedEntries(merged),
			})
		}
	})
	if err != nil {
		return nil, err
	}
	return &SweepResult{
		Evaluated:  evaluated,
		Feasible:   feasible,
		Candidates: merged.Results(),
		Shards:     shards,
		Retries:    retries,
	}, nil
}

// indexedEntries converts a TopK's retained entries to the replication
// form.
func indexedEntries(t *explore.TopK) []IndexedCandidate {
	entries := t.Entries()
	out := make([]IndexedCandidate, len(entries))
	for i, e := range entries {
		out[i] = IndexedCandidate{Index: e.Index, Candidate: e.Candidate}
	}
	return out
}
