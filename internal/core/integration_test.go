package core

import (
	"testing"

	"repro/internal/mathx"
	"repro/internal/sim"
	"repro/internal/space"
)

// TestEndToEndSimulateTrainPredict exercises the complete Figure 6
// pipeline on real simulator output at reduced scale: LHS-sampled training
// designs, detailed simulation, wavelet decomposition, per-coefficient RBF
// training, and reconstruction at unseen test designs.
func TestEndToEndSimulateTrainPredict(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test: skipped with -short")
	}
	const (
		nTrain  = 28
		nTest   = 6
		samples = 32
	)
	opts := sim.Options{Instructions: 32768, Samples: samples}
	rng := mathx.NewRNG(42)
	trainCfgs := space.SampleDesign(nTrain, space.TrainLevels(), space.Baseline(), 5, rng)
	testCfgs := space.Random(nTest, space.TestLevels(), space.Baseline(), rng)

	jobs := make([]sim.Job, 0, nTrain+nTest)
	for _, c := range trainCfgs {
		jobs = append(jobs, sim.Job{Config: c, Benchmark: "gcc"})
	}
	for _, c := range testCfgs {
		jobs = append(jobs, sim.Job{Config: c, Benchmark: "gcc"})
	}
	traces, err := sim.Sweep(jobs, opts, 0)
	if err != nil {
		t.Fatal(err)
	}

	trainTraces := make([][]float64, nTrain)
	for i := 0; i < nTrain; i++ {
		trainTraces[i] = traces[i].CPI
	}
	p, err := Train(trainCfgs, trainTraces, Options{NumCoefficients: 8})
	if err != nil {
		t.Fatal(err)
	}
	g, err := TrainGlobalANN(trainCfgs, trainTraces, Options{})
	if err != nil {
		t.Fatal(err)
	}

	var mseWavelet, mseGlobal float64
	for i, cfg := range testCfgs {
		actual := traces[nTrain+i].CPI
		mseWavelet += mathx.RelativeMSEPercent(actual, p.Predict(cfg))
		mseGlobal += mathx.RelativeMSEPercent(actual, g.Predict(cfg))
	}
	mseWavelet /= nTest
	mseGlobal /= nTest

	t.Logf("end-to-end gcc CPI: wavelet-NN MSE%%=%.2f global-ANN MSE%%=%.2f", mseWavelet, mseGlobal)
	// At this tiny training budget the bar is modest; the paper-scale
	// protocol (200 train points) is exercised by the benchmark harness.
	if mseWavelet > 30 {
		t.Errorf("wavelet-NN end-to-end MSE%% = %v, want < 30", mseWavelet)
	}
	// The headline claim: dynamics-aware prediction beats the aggregate
	// (flat) model on dynamics error.
	if mseWavelet >= mseGlobal {
		t.Errorf("wavelet-NN (%v) should beat global ANN (%v) on trace MSE", mseWavelet, mseGlobal)
	}

	// Predicted traces must be broadly physical: positive CPI.
	for _, cfg := range testCfgs {
		for _, v := range p.Predict(cfg) {
			if v < 0 {
				t.Fatalf("predicted negative CPI %v", v)
			}
		}
	}
}
