// Package core implements the paper's primary contribution: wavelet neural
// networks for workload-dynamics prediction across the microarchitecture
// design space (Section 2.3, Figure 6).
//
// The hybrid scheme has three stages:
//
//  1. Each training trace (a fixed-length sampled time series of CPI, power
//     or AVF) is decomposed by a discrete wavelet transform.
//  2. A small set of important wavelet coefficient positions is selected
//     (magnitude-based by default: the paper shows the magnitude ranking is
//     stable across configurations, Figure 7). One RBF neural network is
//     trained per selected position, mapping the normalised configuration
//     vector to that coefficient's value.
//  3. To predict the dynamics at an unseen configuration, the per-position
//     networks are evaluated, unselected positions are zero-filled, and the
//     inverse wavelet transform reconstructs the time-domain trace.
//
// Baseline models from the related work the paper compares against
// (monolithic "global" networks predicting aggregate behaviour, and linear
// models) live in baseline.go.
package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rbf"
	"repro/internal/space"
	"repro/internal/wavelet"
)

// Selection chooses which wavelet coefficients are modelled.
type Selection int

const (
	// SelectMagnitude keeps the k positions with the largest mean
	// magnitude across the training set (the paper's preferred scheme).
	SelectMagnitude Selection = iota
	// SelectOrder keeps the first k positions (coarsest scales first).
	SelectOrder
)

// String names the selection scheme.
func (s Selection) String() string {
	if s == SelectMagnitude {
		return "magnitude"
	}
	return "order"
}

// Options configures predictor training.
type Options struct {
	// Wavelet is the analysing transform. Default wavelet.Haar{}.
	Wavelet wavelet.Transform
	// NumCoefficients is k, the number of modelled wavelet coefficients.
	// Default 16 (the paper's accuracy/complexity sweet spot, Figure 9).
	NumCoefficients int
	// Selection is the coefficient selection scheme. Default magnitude.
	Selection Selection
	// RBF configures the per-coefficient networks.
	RBF rbf.Options
	// UseDVMFeatures switches the input encoding to the 11-feature
	// vector that includes the DVM design parameter (Section 5).
	UseDVMFeatures bool
}

func (o Options) withDefaults() Options {
	if o.Wavelet == nil {
		o.Wavelet = wavelet.Haar{}
	}
	if o.NumCoefficients <= 0 {
		o.NumCoefficients = 16
	}
	if o.RBF.DimLevels == nil {
		// Declare the canonical Table 2 feature levels so the RBF networks
		// adopt the factored kernel and precompute per-level factors:
		// level-driven sweeps then evaluate every basis function without
		// computing exponentials. Off-level inputs still work (the factor
		// is computed on the fly), so this is purely an optimisation
		// default; callers may override with their own declaration.
		o.RBF.DimLevels = space.FeatureLevels(o.UseDVMFeatures)
	}
	return o
}

// Predictor forecasts one benchmark's dynamics in one metric domain across
// the design space.
type Predictor struct {
	opts     Options
	traceLen int
	selected []int
	nets     []*rbf.Network

	// basis holds one reconstruction basis vector per selected coefficient
	// position: basis[i] = Reconstruct(e_selected[i]). Wavelet
	// reconstruction is linear, so a predicted trace is the sum of the
	// per-coefficient predictions scaled onto these precomputed vectors —
	// Predict never runs an inverse transform and never allocates a
	// coefficient buffer. basisLo/basisHi bound each vector's nonzero
	// support (fine-scale wavelets are localised), so accumulation skips
	// the zero tails.
	basis   [][]float64
	basisLo []int
	basisHi []int
}

// featureVector applies the configured input encoding.
func (o Options) featureVector(cfg space.Config) []float64 {
	if o.UseDVMFeatures {
		return cfg.VectorDVM()
	}
	return cfg.Vector()
}

// featureVectorInto applies the configured input encoding, appending to dst
// (usually the [:0] of stack scratch sized space.MaxFeatures) so the hot
// path encodes features without heap allocation. cfg is by pointer to
// avoid a per-call Config copy at model-query rates.
func (o Options) featureVectorInto(cfg *space.Config, dst []float64) []float64 {
	if o.UseDVMFeatures {
		return cfg.VectorDVMInto(dst)
	}
	return cfg.VectorInto(dst)
}

// numFeatures is the width of the configured input encoding.
func (o Options) numFeatures() int {
	if o.UseDVMFeatures {
		return space.MaxFeatures
	}
	return space.NumParams
}

// waveletBasis precomputes the reconstruction basis vectors for the
// selected coefficient positions: column pos of the inverse transform,
// obtained by reconstructing the unit coefficient vector e_pos.
func waveletBasis(w wavelet.Transform, traceLen int, selected []int) [][]float64 {
	unit := make([]float64, traceLen)
	basis := make([][]float64, len(selected))
	for i, pos := range selected {
		unit[pos] = 1
		b, err := w.Reconstruct(unit)
		if err != nil {
			// Reconstruct only fails on bad lengths, validated at
			// train/load time.
			panic(fmt.Sprintf("core: basis reconstruction failed: %v", err))
		}
		basis[i] = b
		unit[pos] = 0
	}
	return basis
}

// basisSpans returns, per basis vector, the [lo, hi) bounds of its
// nonzero support. Skipping the zero tails only ever skips adding exact
// zeros, so trimmed accumulation matches full accumulation bit-for-bit.
func basisSpans(basis [][]float64) (lo, hi []int) {
	lo = make([]int, len(basis))
	hi = make([]int, len(basis))
	for i, b := range basis {
		l, h := 0, len(b)
		for l < h && b[l] == 0 {
			l++
		}
		for h > l && b[h-1] == 0 {
			h--
		}
		lo[i], hi[i] = l, h
	}
	return lo, hi
}

// sizeTrace returns dst resized to n entries, reusing its backing array
// when capacity allows. Contents are unspecified; callers overwrite.
func sizeTrace(dst []float64, n int) []float64 {
	if cap(dst) < n {
		return make([]float64, n)
	}
	return dst[:n]
}

// Train fits a wavelet neural network on the observed traces of the
// training configurations. All traces must share one power-of-two length.
func Train(configs []space.Config, traces [][]float64, opts Options) (*Predictor, error) {
	opts = opts.withDefaults()
	if len(configs) == 0 || len(configs) != len(traces) {
		return nil, fmt.Errorf("core: need matching configs (%d) and traces (%d)", len(configs), len(traces))
	}
	n := len(traces[0])
	if !wavelet.IsPowerOfTwo(n) {
		return nil, fmt.Errorf("core: trace length %d not a power of two", n)
	}
	for i, tr := range traces {
		if len(tr) != n {
			return nil, fmt.Errorf("core: trace %d has length %d, want %d", i, len(tr), n)
		}
	}

	// Stage 1: decompose every training trace.
	coeffs := make([][]float64, len(traces))
	for i, tr := range traces {
		c, err := opts.Wavelet.Decompose(tr)
		if err != nil {
			return nil, err
		}
		coeffs[i] = c
	}

	// Stage 2a: select coefficient positions.
	k := opts.NumCoefficients
	if k > n {
		k = n
	}
	var selected []int
	switch opts.Selection {
	case SelectMagnitude:
		selected = selectByMeanMagnitude(coeffs, k)
	case SelectOrder:
		selected = wavelet.FirstK(n, k)
	default:
		return nil, fmt.Errorf("core: unknown selection scheme %d", opts.Selection)
	}

	// Stage 2b: one RBF network per selected position.
	xs := make([][]float64, len(configs))
	for i, cfg := range configs {
		xs[i] = opts.featureVector(cfg)
	}
	p := &Predictor{opts: opts, traceLen: n, selected: selected}
	ys := make([]float64, len(configs))
	for _, pos := range selected {
		for i := range coeffs {
			ys[i] = coeffs[i][pos]
		}
		net, err := rbf.Train(xs, ys, opts.RBF)
		if err != nil {
			return nil, fmt.Errorf("core: coefficient %d: %w", pos, err)
		}
		p.nets = append(p.nets, net)
	}
	p.basis = waveletBasis(opts.Wavelet, n, selected)
	p.basisLo, p.basisHi = basisSpans(p.basis)
	return p, nil
}

// selectByMeanMagnitude ranks positions by their mean |coefficient| across
// the training set and returns the top k (Figure 7 justifies pooling: the
// ranking is largely configuration-invariant).
func selectByMeanMagnitude(coeffs [][]float64, k int) []int {
	n := len(coeffs[0])
	mean := make([]float64, n)
	for _, c := range coeffs {
		for j, v := range c {
			mean[j] += math.Abs(v)
		}
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if mean[idx[a]] != mean[idx[b]] {
			return mean[idx[a]] > mean[idx[b]]
		}
		return idx[a] < idx[b]
	})
	out := make([]int, k)
	copy(out, idx[:k])
	sort.Ints(out)
	return out
}

// Predict reconstructs the forecast dynamics trace for a configuration
// (stage 3). Reconstruction is linear, so the trace is assembled as k
// scaled additions of the precomputed basis vectors — no inverse transform
// runs at inference time. Predict allocates only the returned trace; use
// PredictInto or PredictBatch on hot paths to reuse caller scratch.
func (p *Predictor) Predict(cfg space.Config) []float64 {
	return p.PredictInto(cfg, make([]float64, p.traceLen))
}

// PredictInto writes the forecast trace into dst (reusing its backing
// array when cap(dst) ≥ TraceLen) and returns the filled slice. With
// adequate capacity it performs zero heap allocations, and its output is
// bit-identical to Predict — both run the same basis-accumulation path.
func (p *Predictor) PredictInto(cfg space.Config, dst []float64) []float64 {
	var fbuf [space.MaxFeatures]float64
	return p.PredictVecInto(p.opts.featureVectorInto(&cfg, fbuf[:0]), dst)
}

// NumFeatures implements VecPredictor.
func (p *Predictor) NumFeatures() int { return p.opts.numFeatures() }

// PredictVecInto writes the forecast for the already-encoded feature
// vector x into dst; see VecPredictor. PredictInto delegates here, so the
// two are bit-identical by construction.
func (p *Predictor) PredictVecInto(x []float64, dst []float64) []float64 {
	dst = sizeTrace(dst, p.traceLen)
	if len(p.selected) == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	// The first network's span is written rather than accumulated, so only
	// the trace outside that span needs zeroing — usually nothing, since
	// the approximation coefficient's basis spans the whole trace. Storing
	// c·bv instead of adding it onto zero is identical up to the sign of
	// zero, which float comparison cannot observe.
	lo0, hi0 := p.basisLo[0], p.basisHi[0]
	for i := range dst[:lo0] {
		dst[i] = 0
	}
	for i := hi0; i < len(dst); i++ {
		dst[i] = 0
	}
	for i := range p.selected {
		c := p.nets[i].Predict(x)
		// Accumulate only over the basis vector's nonzero support —
		// fine-scale wavelets touch a handful of samples, so most passes
		// are short. Skipped entries would only ever add exact zeros.
		lo := p.basisLo[i]
		bvs := p.basis[i][lo:p.basisHi[i]]
		// Equal-length reslice lets the compiler drop the bounds check in
		// the accumulation loops.
		d := dst[lo:][:len(bvs)]
		if i == 0 {
			for j, bv := range bvs {
				d[j] = c * bv
			}
			continue
		}
		for j, bv := range bvs {
			d[j] += c * bv
		}
	}
	return dst
}

// PredictBatch forecasts every configuration in cfgs, writing trace i into
// dst[i] (rows are grown or reused like PredictInto's dst) and returning
// the filled slice-of-slices. Pass the previous return value back in to
// sweep the design space with zero steady-state allocations.
func (p *Predictor) PredictBatch(cfgs []space.Config, dst [][]float64) [][]float64 {
	if cap(dst) < len(cfgs) {
		grown := make([][]float64, len(cfgs))
		copy(grown, dst[:cap(dst)])
		dst = grown
	}
	dst = dst[:len(cfgs)]
	for i, cfg := range cfgs {
		dst[i] = p.PredictInto(cfg, dst[i])
	}
	return dst
}

// SelectedCoefficients returns the modelled coefficient positions in
// ascending order.
func (p *Predictor) SelectedCoefficients() []int {
	return append([]int(nil), p.selected...)
}

// TraceLen returns the length of predicted traces.
func (p *Predictor) TraceLen() int { return p.traceLen }

// WaveletName names the analysing transform, for manifests and inventories.
func (p *Predictor) WaveletName() string { return p.opts.Wavelet.Name() }

// UsesDVMFeatures reports whether the 11-feature DVM input encoding is in
// effect (Section 5).
func (p *Predictor) UsesDVMFeatures() bool { return p.opts.UseDVMFeatures }

// NumNetworks returns the number of per-coefficient RBF networks.
func (p *Predictor) NumNetworks() int { return len(p.nets) }

// ImportanceByOrder aggregates the regression-tree first-split depths of
// all coefficient networks into one per-parameter significance score
// (Figure 11a). Scores are normalised to max 1.
func (p *Predictor) ImportanceByOrder() []float64 {
	return p.aggregateImportance(func(net *rbf.Network) []float64 {
		return net.Tree().ImportanceByOrder()
	})
}

// ImportanceByFrequency aggregates regression-tree split counts
// (Figure 11b). Scores are normalised to max 1.
func (p *Predictor) ImportanceByFrequency() []float64 {
	return p.aggregateImportance(func(net *rbf.Network) []float64 {
		return net.Tree().ImportanceByFrequency()
	})
}

func (p *Predictor) aggregateImportance(f func(*rbf.Network) []float64) []float64 {
	if len(p.nets) == 0 {
		return nil
	}
	// Predictors restored with Load have no regression trees (persist.go);
	// importance analysis needs a freshly trained model.
	for _, net := range p.nets {
		if net.Tree() == nil {
			return nil
		}
	}
	agg := make([]float64, len(f(p.nets[0])))
	for _, net := range p.nets {
		for j, v := range f(net) {
			agg[j] += v
		}
	}
	max := 0.0
	for _, v := range agg {
		if v > max {
			max = v
		}
	}
	if max > 0 {
		for j := range agg {
			agg[j] /= max
		}
	}
	return agg
}
