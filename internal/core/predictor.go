// Package core implements the paper's primary contribution: wavelet neural
// networks for workload-dynamics prediction across the microarchitecture
// design space (Section 2.3, Figure 6).
//
// The hybrid scheme has three stages:
//
//  1. Each training trace (a fixed-length sampled time series of CPI, power
//     or AVF) is decomposed by a discrete wavelet transform.
//  2. A small set of important wavelet coefficient positions is selected
//     (magnitude-based by default: the paper shows the magnitude ranking is
//     stable across configurations, Figure 7). One RBF neural network is
//     trained per selected position, mapping the normalised configuration
//     vector to that coefficient's value.
//  3. To predict the dynamics at an unseen configuration, the per-position
//     networks are evaluated, unselected positions are zero-filled, and the
//     inverse wavelet transform reconstructs the time-domain trace.
//
// Baseline models from the related work the paper compares against
// (monolithic "global" networks predicting aggregate behaviour, and linear
// models) live in baseline.go.
package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rbf"
	"repro/internal/space"
	"repro/internal/wavelet"
)

// Selection chooses which wavelet coefficients are modelled.
type Selection int

const (
	// SelectMagnitude keeps the k positions with the largest mean
	// magnitude across the training set (the paper's preferred scheme).
	SelectMagnitude Selection = iota
	// SelectOrder keeps the first k positions (coarsest scales first).
	SelectOrder
)

// String names the selection scheme.
func (s Selection) String() string {
	if s == SelectMagnitude {
		return "magnitude"
	}
	return "order"
}

// Options configures predictor training.
type Options struct {
	// Wavelet is the analysing transform. Default wavelet.Haar{}.
	Wavelet wavelet.Transform
	// NumCoefficients is k, the number of modelled wavelet coefficients.
	// Default 16 (the paper's accuracy/complexity sweet spot, Figure 9).
	NumCoefficients int
	// Selection is the coefficient selection scheme. Default magnitude.
	Selection Selection
	// RBF configures the per-coefficient networks.
	RBF rbf.Options
	// UseDVMFeatures switches the input encoding to the 11-feature
	// vector that includes the DVM design parameter (Section 5).
	UseDVMFeatures bool
}

func (o Options) withDefaults() Options {
	if o.Wavelet == nil {
		o.Wavelet = wavelet.Haar{}
	}
	if o.NumCoefficients <= 0 {
		o.NumCoefficients = 16
	}
	return o
}

// Predictor forecasts one benchmark's dynamics in one metric domain across
// the design space.
type Predictor struct {
	opts     Options
	traceLen int
	selected []int
	nets     []*rbf.Network
}

// featureVector applies the configured input encoding.
func (o Options) featureVector(cfg space.Config) []float64 {
	if o.UseDVMFeatures {
		return cfg.VectorDVM()
	}
	return cfg.Vector()
}

// Train fits a wavelet neural network on the observed traces of the
// training configurations. All traces must share one power-of-two length.
func Train(configs []space.Config, traces [][]float64, opts Options) (*Predictor, error) {
	opts = opts.withDefaults()
	if len(configs) == 0 || len(configs) != len(traces) {
		return nil, fmt.Errorf("core: need matching configs (%d) and traces (%d)", len(configs), len(traces))
	}
	n := len(traces[0])
	if !wavelet.IsPowerOfTwo(n) {
		return nil, fmt.Errorf("core: trace length %d not a power of two", n)
	}
	for i, tr := range traces {
		if len(tr) != n {
			return nil, fmt.Errorf("core: trace %d has length %d, want %d", i, len(tr), n)
		}
	}

	// Stage 1: decompose every training trace.
	coeffs := make([][]float64, len(traces))
	for i, tr := range traces {
		c, err := opts.Wavelet.Decompose(tr)
		if err != nil {
			return nil, err
		}
		coeffs[i] = c
	}

	// Stage 2a: select coefficient positions.
	k := opts.NumCoefficients
	if k > n {
		k = n
	}
	var selected []int
	switch opts.Selection {
	case SelectMagnitude:
		selected = selectByMeanMagnitude(coeffs, k)
	case SelectOrder:
		selected = wavelet.FirstK(n, k)
	default:
		return nil, fmt.Errorf("core: unknown selection scheme %d", opts.Selection)
	}

	// Stage 2b: one RBF network per selected position.
	xs := make([][]float64, len(configs))
	for i, cfg := range configs {
		xs[i] = opts.featureVector(cfg)
	}
	p := &Predictor{opts: opts, traceLen: n, selected: selected}
	ys := make([]float64, len(configs))
	for _, pos := range selected {
		for i := range coeffs {
			ys[i] = coeffs[i][pos]
		}
		net, err := rbf.Train(xs, ys, opts.RBF)
		if err != nil {
			return nil, fmt.Errorf("core: coefficient %d: %w", pos, err)
		}
		p.nets = append(p.nets, net)
	}
	return p, nil
}

// selectByMeanMagnitude ranks positions by their mean |coefficient| across
// the training set and returns the top k (Figure 7 justifies pooling: the
// ranking is largely configuration-invariant).
func selectByMeanMagnitude(coeffs [][]float64, k int) []int {
	n := len(coeffs[0])
	mean := make([]float64, n)
	for _, c := range coeffs {
		for j, v := range c {
			mean[j] += math.Abs(v)
		}
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if mean[idx[a]] != mean[idx[b]] {
			return mean[idx[a]] > mean[idx[b]]
		}
		return idx[a] < idx[b]
	})
	out := make([]int, k)
	copy(out, idx[:k])
	sort.Ints(out)
	return out
}

// Predict reconstructs the forecast dynamics trace for a configuration
// (stage 3: inverse transform over predicted coefficients, zeros
// elsewhere).
func (p *Predictor) Predict(cfg space.Config) []float64 {
	x := p.opts.featureVector(cfg)
	coeffs := make([]float64, p.traceLen)
	for i, pos := range p.selected {
		coeffs[pos] = p.nets[i].Predict(x)
	}
	out, err := p.opts.Wavelet.Reconstruct(coeffs)
	if err != nil {
		// Reconstruct only fails on bad lengths, which Train validated.
		panic(fmt.Sprintf("core: reconstruction failed: %v", err))
	}
	return out
}

// SelectedCoefficients returns the modelled coefficient positions in
// ascending order.
func (p *Predictor) SelectedCoefficients() []int {
	return append([]int(nil), p.selected...)
}

// TraceLen returns the length of predicted traces.
func (p *Predictor) TraceLen() int { return p.traceLen }

// WaveletName names the analysing transform, for manifests and inventories.
func (p *Predictor) WaveletName() string { return p.opts.Wavelet.Name() }

// UsesDVMFeatures reports whether the 11-feature DVM input encoding is in
// effect (Section 5).
func (p *Predictor) UsesDVMFeatures() bool { return p.opts.UseDVMFeatures }

// NumNetworks returns the number of per-coefficient RBF networks.
func (p *Predictor) NumNetworks() int { return len(p.nets) }

// ImportanceByOrder aggregates the regression-tree first-split depths of
// all coefficient networks into one per-parameter significance score
// (Figure 11a). Scores are normalised to max 1.
func (p *Predictor) ImportanceByOrder() []float64 {
	return p.aggregateImportance(func(net *rbf.Network) []float64 {
		return net.Tree().ImportanceByOrder()
	})
}

// ImportanceByFrequency aggregates regression-tree split counts
// (Figure 11b). Scores are normalised to max 1.
func (p *Predictor) ImportanceByFrequency() []float64 {
	return p.aggregateImportance(func(net *rbf.Network) []float64 {
		return net.Tree().ImportanceByFrequency()
	})
}

func (p *Predictor) aggregateImportance(f func(*rbf.Network) []float64) []float64 {
	if len(p.nets) == 0 {
		return nil
	}
	// Predictors restored with Load have no regression trees (persist.go);
	// importance analysis needs a freshly trained model.
	for _, net := range p.nets {
		if net.Tree() == nil {
			return nil
		}
	}
	agg := make([]float64, len(f(p.nets[0])))
	for _, net := range p.nets {
		for j, v := range f(net) {
			agg[j] += v
		}
	}
	max := 0.0
	for _, v := range agg {
		if v > max {
			max = v
		}
	}
	if max > 0 {
		for j := range agg {
			agg[j] /= max
		}
	}
	return agg
}
