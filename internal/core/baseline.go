package core

import (
	"fmt"

	"repro/internal/mathx"
	"repro/internal/rbf"
	"repro/internal/space"
)

// This file implements the comparison models the paper positions itself
// against (Sections 1 and 7): monolithic "global" models that predict only
// aggregated workload behaviour, and linear regression models. Both are
// given the same interface as the wavelet neural network — predict a full
// dynamics trace — so their inability to capture time-varying behaviour is
// measurable with the same MSE metric.

// DynamicsModel is the common interface of all trace predictors.
type DynamicsModel interface {
	// Predict returns the forecast dynamics trace for a configuration.
	Predict(cfg space.Config) []float64
}

// IntoPredictor is the allocation-free refinement of DynamicsModel: a
// model that can write its forecast into caller-provided scratch.
// PredictInto must return output bit-identical to Predict. Sweep hot paths
// type-assert for this interface and reuse one trace buffer per model per
// worker; every model in this package implements it.
type IntoPredictor interface {
	DynamicsModel
	// PredictInto writes the forecast trace into dst (reusing its backing
	// array when capacity allows) and returns the filled slice.
	PredictInto(cfg space.Config, dst []float64) []float64
}

// VecPredictor is the feature-vector-level refinement of IntoPredictor:
// the model declares how wide an input encoding it consumes and predicts
// from an already-encoded vector. Sweep engines evaluating several models
// against the same design encode the configuration once and share the
// vector — the plain encoding is a prefix of the DVM encoding, so one
// VectorDVMInto pass serves models of either flavour via x[:NumFeatures()].
// PredictVecInto on the model's own encoding of cfg must be bit-identical
// to PredictInto(cfg, dst); every model in this package implements it.
type VecPredictor interface {
	IntoPredictor
	// NumFeatures is the width of the encoding the model consumes
	// (space.NumParams, or space.MaxFeatures with DVM features).
	NumFeatures() int
	// PredictVecInto writes the forecast for feature vector x (length
	// NumFeatures()) into dst, reusing its backing array when capacity
	// allows, and returns the filled slice.
	PredictVecInto(x []float64, dst []float64) []float64
}

var (
	_ VecPredictor = (*Predictor)(nil)
	_ VecPredictor = (*GlobalANN)(nil)
	_ VecPredictor = (*LinearWavelet)(nil)
)

// GlobalANN is the monolithic neural-network baseline of prior work
// (Ipek et al., Joseph et al.): a single RBF network trained to predict the
// *aggregate* metric. Its trace prediction is necessarily flat — it has no
// notion of time — which is exactly the limitation the paper addresses.
type GlobalANN struct {
	opts     Options
	net      *rbf.Network
	traceLen int
}

// TrainGlobalANN fits the aggregate-behaviour baseline: the response is
// the mean of each training trace.
func TrainGlobalANN(configs []space.Config, traces [][]float64, opts Options) (*GlobalANN, error) {
	opts = opts.withDefaults()
	if len(configs) == 0 || len(configs) != len(traces) {
		return nil, fmt.Errorf("core: need matching configs (%d) and traces (%d)", len(configs), len(traces))
	}
	xs := make([][]float64, len(configs))
	ys := make([]float64, len(configs))
	for i := range configs {
		xs[i] = opts.featureVector(configs[i])
		ys[i] = mathx.Mean(traces[i])
	}
	net, err := rbf.Train(xs, ys, opts.RBF)
	if err != nil {
		return nil, err
	}
	return &GlobalANN{opts: opts, net: net, traceLen: len(traces[0])}, nil
}

// Predict returns a flat trace at the predicted aggregate value.
func (g *GlobalANN) Predict(cfg space.Config) []float64 {
	return g.PredictInto(cfg, make([]float64, g.traceLen))
}

// PredictInto writes the flat trace into dst; see IntoPredictor.
func (g *GlobalANN) PredictInto(cfg space.Config, dst []float64) []float64 {
	var fbuf [space.MaxFeatures]float64
	return g.PredictVecInto(g.opts.featureVectorInto(&cfg, fbuf[:0]), dst)
}

// NumFeatures implements VecPredictor.
func (g *GlobalANN) NumFeatures() int { return g.opts.numFeatures() }

// PredictVecInto writes the flat trace for an already-encoded feature
// vector into dst; see VecPredictor.
func (g *GlobalANN) PredictVecInto(x []float64, dst []float64) []float64 {
	dst = sizeTrace(dst, g.traceLen)
	v := g.net.Predict(x)
	for i := range dst {
		dst[i] = v
	}
	return dst
}

// PredictAggregate returns the predicted aggregate metric.
func (g *GlobalANN) PredictAggregate(cfg space.Config) float64 {
	var fbuf [space.MaxFeatures]float64
	return g.net.Predict(g.opts.featureVectorInto(&cfg, fbuf[:0]))
}

// LinearWavelet is the linear-regression baseline applied inside the
// paper's own wavelet framework: the same coefficient selection, but each
// coefficient is a linear function of the configuration features. It
// isolates the value of non-linear (RBF) modelling from the value of the
// wavelet representation.
type LinearWavelet struct {
	opts     Options
	traceLen int
	selected []int
	weights  [][]float64 // per selected coefficient: [bias, w1..wd]
	basis    [][]float64 // reconstruction basis per selected position
}

// TrainLinearWavelet fits the linear per-coefficient baseline.
func TrainLinearWavelet(configs []space.Config, traces [][]float64, opts Options) (*LinearWavelet, error) {
	opts = opts.withDefaults()
	if len(configs) == 0 || len(configs) != len(traces) {
		return nil, fmt.Errorf("core: need matching configs (%d) and traces (%d)", len(configs), len(traces))
	}
	n := len(traces[0])
	coeffs := make([][]float64, len(traces))
	for i, tr := range traces {
		if len(tr) != n {
			return nil, fmt.Errorf("core: trace %d has length %d, want %d", i, len(tr), n)
		}
		c, err := opts.Wavelet.Decompose(tr)
		if err != nil {
			return nil, err
		}
		coeffs[i] = c
	}
	k := opts.NumCoefficients
	if k > n {
		k = n
	}
	var selected []int
	if opts.Selection == SelectMagnitude {
		selected = selectByMeanMagnitude(coeffs, k)
	} else {
		selected = make([]int, k)
		for i := range selected {
			selected[i] = i
		}
	}

	d := len(opts.featureVector(configs[0]))
	design := mathx.NewMatrix(len(configs), d+1)
	for i, cfg := range configs {
		row := design.Row(i)
		row[0] = 1
		copy(row[1:], opts.featureVector(cfg))
	}
	lw := &LinearWavelet{opts: opts, traceLen: n, selected: selected}
	ys := make([]float64, len(configs))
	for _, pos := range selected {
		for i := range coeffs {
			ys[i] = coeffs[i][pos]
		}
		w, err := mathx.RidgeSolve(design, ys, 1e-6)
		if err != nil {
			return nil, fmt.Errorf("core: linear fit for coefficient %d: %w", pos, err)
		}
		lw.weights = append(lw.weights, w)
	}
	lw.basis = waveletBasis(opts.Wavelet, n, selected)
	return lw, nil
}

// Predict reconstructs the trace from linearly predicted coefficients.
func (l *LinearWavelet) Predict(cfg space.Config) []float64 {
	return l.PredictInto(cfg, make([]float64, l.traceLen))
}

// PredictInto writes the forecast trace into dst; see IntoPredictor. Like
// Predictor, reconstruction is k scaled additions of precomputed basis
// vectors.
func (l *LinearWavelet) PredictInto(cfg space.Config, dst []float64) []float64 {
	var fbuf [space.MaxFeatures]float64
	return l.PredictVecInto(l.opts.featureVectorInto(&cfg, fbuf[:0]), dst)
}

// NumFeatures implements VecPredictor.
func (l *LinearWavelet) NumFeatures() int { return l.opts.numFeatures() }

// PredictVecInto reconstructs the trace for an already-encoded feature
// vector; see VecPredictor.
func (l *LinearWavelet) PredictVecInto(x []float64, dst []float64) []float64 {
	dst = sizeTrace(dst, l.traceLen)
	for i := range dst {
		dst[i] = 0
	}
	for i := range l.selected {
		w := l.weights[i]
		v := w[0]
		for j, xv := range x {
			v += w[j+1] * xv
		}
		for j, bv := range l.basis[i] {
			dst[j] += v * bv
		}
	}
	return dst
}
