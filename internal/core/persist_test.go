package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/wavelet"
)

func TestPredictorSaveLoadRoundTrip(t *testing.T) {
	train, test := sampleConfigs(80, 10, 21)
	traces := tracesFor(train, 32)
	p, err := Train(train, traces, Options{NumCoefficients: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range test {
		a, b := p.Predict(cfg), p2.Predict(cfg)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("loaded predictor disagrees at sample %d: %v vs %v", i, a[i], b[i])
			}
		}
	}
	if p2.TraceLen() != p.TraceLen() || p2.NumNetworks() != p.NumNetworks() {
		t.Error("shape metadata not preserved")
	}
}

func TestPredictorSaveLoadDVMFeatures(t *testing.T) {
	train, _ := sampleConfigs(60, 0, 22)
	for i := range train {
		train[i].DVM = i%2 == 0
		train[i].DVMThreshold = 0.3
	}
	traces := tracesFor(train, 16)
	p, err := Train(train, traces, Options{NumCoefficients: 4, UseDVMFeatures: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	probe := train[0]
	probe.DVM = true
	if p.Predict(probe)[0] != p2.Predict(probe)[0] {
		t.Error("DVM feature encoding lost in round trip")
	}
}

func TestPredictorSaveLoadDaub4(t *testing.T) {
	train, _ := sampleConfigs(60, 0, 23)
	traces := tracesFor(train, 32)
	p, err := Train(train, traces, Options{Wavelet: wavelet.Daubechies4{}, NumCoefficients: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p.Predict(train[0])[3] != p2.Predict(train[0])[3] {
		t.Error("daub4 round trip mismatch")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("{broken")); err == nil {
		t.Error("corrupt JSON should fail")
	}
	if _, err := Load(strings.NewReader(`{"format_version":99}`)); err == nil {
		t.Error("wrong version should fail")
	}
	if _, err := Load(strings.NewReader(`{"format_version":1,"trace_len":7,"wavelet":"haar"}`)); err == nil {
		t.Error("non-power-of-two trace length should fail")
	}
	if _, err := Load(strings.NewReader(`{"format_version":1,"trace_len":8,"wavelet":"nope"}`)); err == nil {
		t.Error("unknown wavelet should fail")
	}
	if _, err := Load(strings.NewReader(`{"format_version":1,"trace_len":8,"wavelet":"haar","selected":[9],"nets":[{}]}`)); err == nil {
		t.Error("out-of-range coefficient should fail")
	}
	if _, err := Load(strings.NewReader(`{"format_version":1,"trace_len":8,"wavelet":"haar","selected":[],"nets":[]}`)); err == nil {
		t.Error("predictor with no networks should fail")
	}
	if _, err := Load(strings.NewReader(`{"format_version":1,"trace_len":8,"wavelet":"haar","selected":[2,2],"nets":[{},{}]}`)); err == nil {
		t.Error("duplicate coefficient should fail")
	}
	if _, err := Load(strings.NewReader(`{"format_version":1,"trace_len":8,"wavelet":"haar","selected":[1,2],"nets":[{},null]}`)); err == nil {
		t.Error("null network should fail")
	}
}

func TestPredictorMetadataAccessors(t *testing.T) {
	train, _ := sampleConfigs(60, 0, 25)
	traces := tracesFor(train, 16)
	p, err := Train(train, traces, Options{NumCoefficients: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p.WaveletName() != "haar" {
		t.Errorf("WaveletName = %q, want haar", p.WaveletName())
	}
	if p.UsesDVMFeatures() {
		t.Error("plain encoding reported as DVM")
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p2.WaveletName() != p.WaveletName() || p2.UsesDVMFeatures() != p.UsesDVMFeatures() {
		t.Error("metadata accessors lost in round trip")
	}
}

func TestLoadedPredictorImportanceUnavailable(t *testing.T) {
	train, _ := sampleConfigs(60, 0, 24)
	traces := tracesFor(train, 16)
	p, err := Train(train, traces, Options{NumCoefficients: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if imp := p2.ImportanceByOrder(); imp != nil {
		t.Errorf("loaded predictor importance should be nil, got %v", imp)
	}
}
