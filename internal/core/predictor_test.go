package core

import (
	"math"
	"testing"

	"repro/internal/mathx"
	"repro/internal/space"
	"repro/internal/wavelet"
)

// syntheticTrace builds a trace whose shape is a smooth function of the
// configuration vector: a baseline level set by one feature and a bump
// whose height follows another. This gives Train a learnable ground truth
// without running the simulator.
func syntheticTrace(cfg space.Config, n int) []float64 {
	x := cfg.Vector()
	level := 1 + 2*x[0] // driven by fetch width
	bump := 3 * x[4]    // driven by L2 size
	out := make([]float64, n)
	for t := range out {
		out[t] = level
		if t >= n/4 && t < n/2 {
			out[t] += bump
		}
	}
	return out
}

// sampleConfigs draws training and test designs from the Table 2 spaces.
func sampleConfigs(nTrain, nTest int, seed uint64) (train, test []space.Config) {
	rng := mathx.NewRNG(seed)
	train = space.LHS(nTrain, space.TrainLevels(), space.Baseline(), rng)
	test = space.Random(nTest, space.TestLevels(), space.Baseline(), rng)
	return train, test
}

func tracesFor(configs []space.Config, n int) [][]float64 {
	out := make([][]float64, len(configs))
	for i, c := range configs {
		out[i] = syntheticTrace(c, n)
	}
	return out
}

func TestTrainPredictSynthetic(t *testing.T) {
	train, test := sampleConfigs(120, 30, 1)
	traces := tracesFor(train, 64)
	p, err := Train(train, traces, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for _, cfg := range test {
		want := syntheticTrace(cfg, 64)
		got := p.Predict(cfg)
		if len(got) != 64 {
			t.Fatalf("prediction length %d", len(got))
		}
		if e := mathx.RelativeMSEPercent(want, got); e > worst {
			worst = e
		}
	}
	if worst > 5 {
		t.Errorf("worst synthetic test MSE%% = %v, want < 5", worst)
	}
}

func TestPredictorBeatsGlobalOnDynamics(t *testing.T) {
	train, test := sampleConfigs(120, 25, 2)
	traces := tracesFor(train, 64)
	p, err := Train(train, traces, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := TrainGlobalANN(train, traces, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var mseP, mseG float64
	for _, cfg := range test {
		want := syntheticTrace(cfg, 64)
		mseP += mathx.RelativeMSEPercent(want, p.Predict(cfg))
		mseG += mathx.RelativeMSEPercent(want, g.Predict(cfg))
	}
	if mseP >= mseG {
		t.Errorf("wavelet-NN MSE (%v) must beat flat global model (%v) on dynamic traces", mseP, mseG)
	}
}

func TestGlobalANNPredictsAggregates(t *testing.T) {
	train, test := sampleConfigs(120, 20, 3)
	traces := tracesFor(train, 64)
	g, err := TrainGlobalANN(train, traces, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range test {
		want := mathx.Mean(syntheticTrace(cfg, 64))
		got := g.PredictAggregate(cfg)
		if math.Abs(got-want) > 0.25*(1+math.Abs(want)) {
			t.Errorf("aggregate prediction %v, want ≈%v", got, want)
		}
	}
}

func TestLinearWaveletHandlesLinearTarget(t *testing.T) {
	// When coefficients truly are linear in the features, the linear
	// baseline must be near-exact.
	train, test := sampleConfigs(100, 20, 4)
	mk := func(cfg space.Config) []float64 {
		x := cfg.Vector()
		out := make([]float64, 32)
		for t := range out {
			out[t] = 2 + x[0] + 0.5*x[3]
		}
		return out
	}
	traces := make([][]float64, len(train))
	for i, c := range train {
		traces[i] = mk(c)
	}
	lw, err := TrainLinearWavelet(train, traces, Options{NumCoefficients: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range test {
		want := mk(cfg)
		got := lw.Predict(cfg)
		if e := mathx.RelativeMSEPercent(want, got); e > 0.5 {
			t.Errorf("linear model on linear target MSE%% = %v, want ≈0", e)
		}
	}
}

func TestMagnitudeSelectionBeatsOrderOnLateEnergy(t *testing.T) {
	// A trace whose structure lives at fine scales (late coefficient
	// positions): order-based selection of few coefficients misses it,
	// magnitude-based finds it.
	train, test := sampleConfigs(120, 20, 5)
	mk := func(cfg space.Config, n int) []float64 {
		x := cfg.Vector()
		out := make([]float64, n)
		for t := range out {
			out[t] = 2
			if t%2 == 0 {
				out[t] += 1.5 * x[0] // fine-scale alternation
			}
		}
		return out
	}
	traces := make([][]float64, len(train))
	for i, c := range train {
		traces[i] = mk(c, 64)
	}
	var mseMag, mseOrd float64
	for _, sel := range []Selection{SelectMagnitude, SelectOrder} {
		p, err := Train(train, traces, Options{NumCoefficients: 8, Selection: sel})
		if err != nil {
			t.Fatal(err)
		}
		var mse float64
		for _, cfg := range test {
			mse += mathx.RelativeMSEPercent(mk(cfg, 64), p.Predict(cfg))
		}
		if sel == SelectMagnitude {
			mseMag = mse
		} else {
			mseOrd = mse
		}
	}
	if mseMag >= mseOrd {
		t.Errorf("magnitude selection (%v) should beat order selection (%v) on fine-scale structure", mseMag, mseOrd)
	}
}

func TestTrainValidation(t *testing.T) {
	cfgs := []space.Config{space.Baseline()}
	if _, err := Train(nil, nil, Options{}); err == nil {
		t.Error("empty training set should fail")
	}
	if _, err := Train(cfgs, [][]float64{{1, 2, 3}}, Options{}); err == nil {
		t.Error("non-power-of-two trace should fail")
	}
	if _, err := Train(cfgs, [][]float64{{1, 2}, {3, 4}}, Options{}); err == nil {
		t.Error("mismatched lengths should fail")
	}
}

func TestSelectedCoefficientsRespectK(t *testing.T) {
	train, _ := sampleConfigs(60, 0, 6)
	traces := tracesFor(train, 32)
	p, err := Train(train, traces, Options{NumCoefficients: 5})
	if err != nil {
		t.Fatal(err)
	}
	sel := p.SelectedCoefficients()
	if len(sel) != 5 || p.NumNetworks() != 5 {
		t.Fatalf("selected %d coefficients, %d networks; want 5", len(sel), p.NumNetworks())
	}
	for i := 1; i < len(sel); i++ {
		if sel[i] <= sel[i-1] {
			t.Error("selected coefficients must be ascending and unique")
		}
	}
	if p.TraceLen() != 32 {
		t.Errorf("TraceLen = %d, want 32", p.TraceLen())
	}
}

func TestKClampedToTraceLength(t *testing.T) {
	train, _ := sampleConfigs(60, 0, 7)
	traces := tracesFor(train, 16)
	p, err := Train(train, traces, Options{NumCoefficients: 99})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumNetworks() != 16 {
		t.Errorf("networks = %d, want clamped 16", p.NumNetworks())
	}
}

func TestImportanceIdentifiesDrivingParameters(t *testing.T) {
	train, _ := sampleConfigs(150, 0, 8)
	traces := tracesFor(train, 64) // driven by features 0 (Fetch) and 4 (L2)
	p, err := Train(train, traces, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, imp := range [][]float64{p.ImportanceByOrder(), p.ImportanceByFrequency()} {
		if len(imp) != space.NumParams {
			t.Fatalf("importance length %d", len(imp))
		}
		// The two driving parameters must outrank the strongest
		// non-driving one.
		maxOther := 0.0
		for j, v := range imp {
			if j != 0 && j != 4 && v > maxOther {
				maxOther = v
			}
		}
		if imp[0] <= maxOther || imp[4] <= maxOther {
			t.Errorf("importance %v does not favour the driving parameters (0, 4)", imp)
		}
	}
}

func TestDaub4WaveletOption(t *testing.T) {
	// D4 smears a sharp step across many fine-scale coefficients, so it
	// needs a larger k than Haar for the same step-shaped target.
	train, test := sampleConfigs(100, 10, 9)
	traces := tracesFor(train, 64)
	p, err := Train(train, traces, Options{Wavelet: wavelet.Daubechies4{}, NumCoefficients: 48})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, cfg := range test {
		want := syntheticTrace(cfg, 64)
		total += mathx.RelativeMSEPercent(want, p.Predict(cfg))
	}
	if mean := total / float64(len(test)); mean > 10 {
		t.Errorf("daub4 predictor mean MSE%% = %v, want < 10", mean)
	}
}

func TestDVMFeatureEncoding(t *testing.T) {
	// Traces depend on the DVM flag; the DVM-aware encoding must learn it,
	// and predictions must differ between DVM on and off.
	rng := mathx.NewRNG(10)
	var cfgs []space.Config
	var traces [][]float64
	for _, c := range space.LHS(120, space.TrainLevels(), space.Baseline(), rng) {
		c.DVM = rng.Float64() < 0.5
		c.DVMThreshold = 0.3
		tr := syntheticTrace(c, 32)
		if c.DVM {
			for t := range tr {
				tr[t] *= 0.5
			}
		}
		cfgs = append(cfgs, c)
		traces = append(traces, tr)
	}
	p, err := Train(cfgs, traces, Options{UseDVMFeatures: true})
	if err != nil {
		t.Fatal(err)
	}
	probe := space.Baseline()
	probe.DVMThreshold = 0.3
	probe.DVM = false
	off := mathx.Mean(p.Predict(probe))
	probe.DVM = true
	on := mathx.Mean(p.Predict(probe))
	if on >= off {
		t.Errorf("DVM-on prediction (%v) should be below DVM-off (%v)", on, off)
	}
}
