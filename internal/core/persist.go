package core

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/rbf"
	"repro/internal/wavelet"
)

// Trained predictors can be saved and reloaded, so a design team trains
// once per (benchmark, metric) and ships the models. The regression trees
// behind the RBF centres are not persisted: a loaded predictor forecasts
// identically but cannot recompute the Figure 11 importance statistics.

// predictorFile is the serialised form of a Predictor.
type predictorFile struct {
	FormatVersion  int            `json:"format_version"`
	TraceLen       int            `json:"trace_len"`
	Wavelet        string         `json:"wavelet"`
	Selected       []int          `json:"selected"`
	UseDVMFeatures bool           `json:"use_dvm_features"`
	Nets           []*rbf.Network `json:"nets"`
}

const predictorFormatVersion = 1

// waveletByName maps persisted transform names back to implementations.
func waveletByName(name string) (wavelet.Transform, error) {
	for _, w := range []wavelet.Transform{
		wavelet.Haar{}, wavelet.HaarOrthonormal{}, wavelet.Daubechies4{},
	} {
		if w.Name() == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("core: unknown wavelet %q", name)
}

// Save writes the trained predictor as JSON.
func (p *Predictor) Save(w io.Writer) error {
	f := predictorFile{
		FormatVersion:  predictorFormatVersion,
		TraceLen:       p.traceLen,
		Wavelet:        p.opts.Wavelet.Name(),
		Selected:       p.selected,
		UseDVMFeatures: p.opts.UseDVMFeatures,
		Nets:           p.nets,
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// Load restores a predictor saved with Save.
func Load(r io.Reader) (*Predictor, error) {
	var f predictorFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if f.FormatVersion != predictorFormatVersion {
		return nil, fmt.Errorf("core: predictor format %d, want %d", f.FormatVersion, predictorFormatVersion)
	}
	if !wavelet.IsPowerOfTwo(f.TraceLen) {
		return nil, fmt.Errorf("core: persisted trace length %d invalid", f.TraceLen)
	}
	if len(f.Selected) != len(f.Nets) {
		return nil, fmt.Errorf("core: %d selected coefficients but %d networks", len(f.Selected), len(f.Nets))
	}
	if len(f.Nets) == 0 {
		return nil, fmt.Errorf("core: predictor has no networks")
	}
	seen := make(map[int]bool, len(f.Selected))
	for _, pos := range f.Selected {
		if pos < 0 || pos >= f.TraceLen {
			return nil, fmt.Errorf("core: selected coefficient %d outside trace of %d", pos, f.TraceLen)
		}
		if seen[pos] {
			return nil, fmt.Errorf("core: coefficient %d selected twice", pos)
		}
		seen[pos] = true
	}
	for i, net := range f.Nets {
		if net == nil {
			return nil, fmt.Errorf("core: network %d is null", i)
		}
	}
	w, err := waveletByName(f.Wavelet)
	if err != nil {
		return nil, err
	}
	p := &Predictor{
		opts: Options{
			Wavelet:         w,
			NumCoefficients: len(f.Selected),
			UseDVMFeatures:  f.UseDVMFeatures,
		},
		traceLen: f.TraceLen,
		selected: f.Selected,
		nets:     f.Nets,
		// Rebuild the reconstruction basis cache: a loaded predictor must
		// run the same zero-allocation inference path as a trained one.
		basis: waveletBasis(w, f.TraceLen, f.Selected),
	}
	p.basisLo, p.basisHi = basisSpans(p.basis)
	return p, nil
}
