package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/space"
	"repro/internal/wavelet"
)

// trainVariant fits a small predictor for one (wavelet, DVM-mode) cell of
// the equivalence matrix.
func trainVariant(t *testing.T, w wavelet.Transform, dvm bool) (*Predictor, []space.Config) {
	t.Helper()
	train, test := sampleConfigs(100, 25, 21)
	if dvm {
		for i := range train {
			train[i].DVM = i%2 == 0
			train[i].DVMThreshold = 0.1 + 0.05*float64(i%8)
		}
		for i := range test {
			test[i].DVM = i%2 == 1
			test[i].DVMThreshold = 0.1 + 0.07*float64(i%7)
		}
	}
	p, err := Train(train, tracesFor(train, 64), Options{
		Wavelet:         w,
		NumCoefficients: 8,
		UseDVMFeatures:  dvm,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, test
}

// TestPredictIntoMatchesPredict proves the three inference entry points are
// bit-identical across wavelet families and both feature encodings — the
// contract that lets hot paths switch to the scratch-reusing forms without
// any behavioural drift.
func TestPredictIntoMatchesPredict(t *testing.T) {
	for _, w := range []wavelet.Transform{
		wavelet.Haar{}, wavelet.HaarOrthonormal{}, wavelet.Daubechies4{},
	} {
		for _, dvm := range []bool{false, true} {
			name := w.Name() + "/dvm=false"
			if dvm {
				name = w.Name() + "/dvm=true"
			}
			t.Run(name, func(t *testing.T) {
				p, test := trainVariant(t, w, dvm)
				scratch := make([]float64, 0, p.TraceLen())
				batch := p.PredictBatch(test, nil)
				for i, cfg := range test {
					want := p.Predict(cfg)
					scratch = p.PredictInto(cfg, scratch[:0])
					for j := range want {
						if scratch[j] != want[j] {
							t.Fatalf("cfg %d sample %d: PredictInto %v != Predict %v", i, j, scratch[j], want[j])
						}
						if batch[i][j] != want[j] {
							t.Fatalf("cfg %d sample %d: PredictBatch %v != Predict %v", i, j, batch[i][j], want[j])
						}
					}
				}
			})
		}
	}
}

// TestBasisPathMatchesFullReconstruct checks the linearity exploit against
// the definitionally correct path: evaluate every network, scatter into a
// coefficient vector, run the full inverse transform. The basis
// accumulation must agree to floating-point round-off.
func TestBasisPathMatchesFullReconstruct(t *testing.T) {
	for _, w := range []wavelet.Transform{
		wavelet.Haar{}, wavelet.HaarOrthonormal{}, wavelet.Daubechies4{},
	} {
		t.Run(w.Name(), func(t *testing.T) {
			p, test := trainVariant(t, w, false)
			for _, cfg := range test {
				x := cfg.Vector()
				coeffs := make([]float64, p.traceLen)
				for i, pos := range p.selected {
					coeffs[pos] = p.nets[i].Predict(x)
				}
				want, err := w.Reconstruct(coeffs)
				if err != nil {
					t.Fatal(err)
				}
				got := p.Predict(cfg)
				for j := range want {
					if math.Abs(got[j]-want[j]) > 1e-9*(1+math.Abs(want[j])) {
						t.Fatalf("sample %d: basis path %v, full reconstruct %v", j, got[j], want[j])
					}
				}
			}
		})
	}
}

// TestLoadedPredictorUsesBasisPath proves a persisted-and-restored
// predictor forecasts bit-identically through all three entry points.
func TestLoadedPredictorUsesBasisPath(t *testing.T) {
	p, test := trainVariant(t, wavelet.Daubechies4{}, true)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]float64, 0, p2.TraceLen())
	for _, cfg := range test {
		want := p.Predict(cfg)
		scratch = p2.PredictInto(cfg, scratch[:0])
		for j := range want {
			if scratch[j] != want[j] {
				t.Fatalf("restored PredictInto %v != original Predict %v", scratch[j], want[j])
			}
		}
	}
}

// TestPredictIntoZeroAllocs is the regression gate for the zero-allocation
// contract on every model family's scratch-reusing path.
func TestPredictIntoZeroAllocs(t *testing.T) {
	train, test := sampleConfigs(100, 4, 22)
	traces := tracesFor(train, 64)
	opts := Options{NumCoefficients: 8}

	p, err := Train(train, traces, opts)
	if err != nil {
		t.Fatal(err)
	}
	g, err := TrainGlobalANN(train, traces, opts)
	if err != nil {
		t.Fatal(err)
	}
	lw, err := TrainLinearWavelet(train, traces, opts)
	if err != nil {
		t.Fatal(err)
	}

	models := []struct {
		name string
		m    IntoPredictor
	}{
		{"Predictor", p}, {"GlobalANN", g}, {"LinearWavelet", lw},
	}
	for _, tc := range models {
		dst := make([]float64, 64)
		cfg := test[0]
		if allocs := testing.AllocsPerRun(100, func() {
			dst = tc.m.PredictInto(cfg, dst)
		}); allocs != 0 {
			t.Errorf("%s.PredictInto allocates %v per call, want 0", tc.name, allocs)
		}
	}

	batch := p.PredictBatch(test, nil)
	if allocs := testing.AllocsPerRun(100, func() {
		batch = p.PredictBatch(test, batch)
	}); allocs != 0 {
		t.Errorf("PredictBatch allocates %v per call after warm-up, want 0", allocs)
	}
}
