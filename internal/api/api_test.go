package api

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestSanitizeRequestID(t *testing.T) {
	cases := map[string]string{
		"abc-123":   "abc-123",
		"":          "",
		"has space": "",
		"ctl\nchar": "",
		"quo\"te":   "",
	}
	for in, want := range cases {
		if got := SanitizeRequestID(in); got != want {
			t.Errorf("SanitizeRequestID(%q) = %q, want %q", in, got, want)
		}
	}
	long := make([]byte, maxRequestIDLen+1)
	for i := range long {
		long[i] = 'a'
	}
	if SanitizeRequestID(string(long)) != "" {
		t.Error("oversized request ID accepted")
	}
	if a, b := NewRequestID(), NewRequestID(); a == b {
		t.Error("minted request IDs collide")
	}
}

func TestNegotiable(t *testing.T) {
	req := func(accept string) *http.Request {
		r := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
		if accept != "" {
			r.Header.Set("Accept", accept)
		}
		return r
	}
	cases := []struct {
		accept, offer string
		want          bool
	}{
		{"", ContentJSON, true},
		{"*/*", ContentJSON, true},
		{"application/*", ContentNDJSON, true},
		{"application/json", ContentJSON, true},
		{"application/json; q=0.9, text/html", ContentJSON, true},
		{"text/html", ContentJSON, false},
		{"application/json", ContentNDJSON, true}, // NDJSON lines are JSON
		{"application/x-ndjson", ContentNDJSON, true},
		{"text/event-stream", ContentNDJSON, false},
	}
	for _, tc := range cases {
		if got := Negotiable(req(tc.accept), tc.offer); got != tc.want {
			t.Errorf("Negotiable(%q, %q) = %v, want %v", tc.accept, tc.offer, got, tc.want)
		}
	}
}

func TestCodeAndRetryable(t *testing.T) {
	if CodeForStatus(404) != CodeNotFound || CodeForStatus(500) != CodeInternal || CodeForStatus(429) != CodeTooManyJobs {
		t.Error("status → code mapping drifted")
	}
	for _, status := range []int{429, 502, 503, 504} {
		if !RetryableStatus(status) {
			t.Errorf("status %d should be retryable", status)
		}
	}
	for _, status := range []int{400, 404, 405, 500} {
		if RetryableStatus(status) {
			t.Errorf("status %d should not be retryable", status)
		}
	}
}

func TestJobLifecycle(t *testing.T) {
	m := NewManager(ManagerOptions{})
	release := make(chan struct{})
	job, err := m.Start(JobPareto, "gcc", 100, func(ctx context.Context, pub Publisher) (any, Update, error) {
		pub.Publish(Update{Evaluated: 40})
		<-release
		return "result", Update{Evaluated: 100}, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Subscribers are primed with the latest snapshot.
	ch, cancel := job.Subscribe()
	defer cancel()
	u := <-ch
	if u.Evaluated != 40 || u.State != StateRunning || u.Seq != 1 {
		t.Fatalf("primed snapshot wrong: %+v", u)
	}
	st := job.Status(false)
	if st.State != StateRunning || st.Evaluated != 40 || st.Designs != 100 {
		t.Fatalf("running status wrong: %+v", st)
	}
	close(release)
	<-job.Done()

	var final *Update
	for u := range ch {
		u := u
		final = &u
	}
	if final == nil || !final.Final || final.State != StateDone || final.Evaluated != 100 {
		t.Fatalf("terminal update wrong: %+v", final)
	}
	st = job.Status(true)
	if st.State != StateDone || st.Result != "result" || st.Error != nil {
		t.Fatalf("done status wrong: %+v", st)
	}

	// A post-completion subscriber still gets the final snapshot.
	ch2, cancel2 := job.Subscribe()
	defer cancel2()
	u2, ok := <-ch2
	if !ok || !u2.Final {
		t.Fatalf("late subscriber got %+v (ok=%v), want the final update", u2, ok)
	}
	if _, ok := <-ch2; ok {
		t.Error("late subscriber's channel not closed after the final update")
	}
}

func TestJobFailureMapsStatus(t *testing.T) {
	sentinel := errors.New("unknown benchmark")
	m := NewManager(ManagerOptions{ErrorStatus: func(err error) int {
		if errors.Is(err, sentinel) {
			return http.StatusNotFound
		}
		return http.StatusInternalServerError
	}})
	job, err := m.Start(JobSweep, "doom", 0, func(ctx context.Context, pub Publisher) (any, Update, error) {
		return nil, Update{}, sentinel
	})
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	st := job.Status(true)
	if st.State != StateFailed || st.Error == nil {
		t.Fatalf("failed job status: %+v", st)
	}
	if st.Error.Status != http.StatusNotFound || st.Error.Code != CodeNotFound || st.Error.Retryable {
		t.Errorf("error body mapping wrong: %+v", st.Error)
	}
	if st.Result != nil {
		t.Error("failed job exposes a result")
	}
}

func TestJobPanicBecomesFailure(t *testing.T) {
	m := NewManager(ManagerOptions{})
	job, err := m.Start(JobSweep, "gcc", 0, func(ctx context.Context, pub Publisher) (any, Update, error) {
		panic("boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	st := job.Status(false)
	if st.State != StateFailed || st.Error == nil {
		t.Fatalf("panicking job did not fail cleanly: %+v", st)
	}
}

func TestCancelSettlesCanceled(t *testing.T) {
	m := NewManager(ManagerOptions{})
	job, err := m.Start(JobPareto, "gcc", 0, func(ctx context.Context, pub Publisher) (any, Update, error) {
		<-ctx.Done()
		return nil, Update{}, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(job.ID); err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	if st := job.Status(false); st.State != StateCanceled {
		t.Fatalf("cancelled job settled %q", st.State)
	}
	// Idempotent, and unknown IDs answer ErrUnknownJob.
	if _, err := m.Cancel(job.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("cancelling unknown job: %v", err)
	}
}

// TestBaseContextShutdownCancelsJobs: cancelling the manager's base
// context (daemon shutdown) settles every running job "canceled" with a
// final update, instead of orphaning detached goroutines.
func TestBaseContextShutdownCancelsJobs(t *testing.T) {
	base, shutdown := context.WithCancel(context.Background())
	m := NewManager(ManagerOptions{BaseContext: base})
	job, err := m.Start(JobPareto, "gcc", 0, func(ctx context.Context, pub Publisher) (any, Update, error) {
		<-ctx.Done()
		return nil, Update{}, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := job.Subscribe()
	defer cancel()
	shutdown()
	<-job.Done()
	if st := job.Status(false); st.State != StateCanceled {
		t.Fatalf("job settled %q on daemon shutdown, want canceled", st.State)
	}
	sawFinal := false
	for u := range ch {
		if u.Final {
			sawFinal = true
		}
	}
	if !sawFinal {
		t.Error("shutdown did not publish a final update to subscribers")
	}
}

// TestStartUnbounded: the legacy shims' submissions bypass the
// MaxRunning admission gate.
func TestStartUnbounded(t *testing.T) {
	m := NewManager(ManagerOptions{MaxRunning: 1})
	release := make(chan struct{})
	defer close(release)
	blocker := func(ctx context.Context, pub Publisher) (any, Update, error) {
		<-release
		return nil, Update{}, nil
	}
	if _, err := m.Start(JobSweep, "a", 0, blocker); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start(JobSweep, "b", 0, blocker); !errors.Is(err, ErrTooManyJobs) {
		t.Fatalf("bounded second start: %v, want ErrTooManyJobs", err)
	}
	if _, err := m.StartUnbounded(JobSweep, "c", 0, blocker); err != nil {
		t.Fatalf("unbounded start rejected: %v", err)
	}
}

func TestTooManyJobs(t *testing.T) {
	m := NewManager(ManagerOptions{MaxRunning: 1})
	release := make(chan struct{})
	defer close(release)
	if _, err := m.Start(JobSweep, "a", 0, func(ctx context.Context, pub Publisher) (any, Update, error) {
		<-release
		return nil, Update{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start(JobSweep, "b", 0, func(ctx context.Context, pub Publisher) (any, Update, error) {
		return nil, Update{}, nil
	}); !errors.Is(err, ErrTooManyJobs) {
		t.Fatalf("second concurrent job: %v, want ErrTooManyJobs", err)
	}
}

func TestRetentionEviction(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	m := NewManager(ManagerOptions{Retention: time.Minute, Clock: clock})
	job, err := m.Start(JobSweep, "a", 0, func(ctx context.Context, pub Publisher) (any, Update, error) {
		return nil, Update{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	if _, err := m.Get(job.ID); err != nil {
		t.Fatalf("finished job evicted before retention: %v", err)
	}
	now = now.Add(2 * time.Minute)
	if _, err := m.Get(job.ID); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("expired job still resolvable: %v", err)
	}
}

func TestSlowSubscriberCoalesces(t *testing.T) {
	m := NewManager(ManagerOptions{})
	const updates = 100
	release := make(chan struct{})
	job, err := m.Start(JobPareto, "gcc", 0, func(ctx context.Context, pub Publisher) (any, Update, error) {
		<-release
		for i := 1; i <= updates; i++ {
			pub.Publish(Update{Evaluated: i})
		}
		return nil, Update{Evaluated: updates}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := job.Subscribe()
	defer cancel()
	close(release)
	<-job.Done()
	// The subscriber never read while the publisher raced ahead:
	// intermediates may be dropped, but the final update must survive
	// and evaluated counts must be nondecreasing.
	last, sawFinal := -1, false
	for u := range ch {
		if u.Evaluated < last {
			t.Errorf("evaluated went backwards: %d after %d", u.Evaluated, last)
		}
		last = u.Evaluated
		if u.Final {
			sawFinal = true
		}
	}
	if !sawFinal {
		t.Error("slow subscriber lost the final update")
	}
	if last != updates {
		t.Errorf("last observed evaluated %d, want %d", last, updates)
	}
}

func TestRunningByBenchmark(t *testing.T) {
	m := NewManager(ManagerOptions{})
	release := make(chan struct{})
	defer close(release)
	var wg sync.WaitGroup
	for i, b := range []string{"gcc", "gcc", "mcf"} {
		wg.Add(1)
		if _, err := m.Start(JobSweep, b, 0, func(ctx context.Context, pub Publisher) (any, Update, error) {
			wg.Done()
			<-release
			return nil, Update{}, nil
		}); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	wg.Wait()
	depths := m.RunningByBenchmark()
	if depths["gcc"] != 2 || depths["mcf"] != 1 {
		t.Errorf("queue depths = %v, want gcc:2 mcf:1", depths)
	}
}

func TestNewErrorFormatsArgs(t *testing.T) {
	e := NewError(http.StatusBadRequest, "rid", "bad %s %d", "thing", 7)
	if e.Message != "bad thing 7" || e.Code != CodeBadRequest || e.RequestID != "rid" || e.Status != 400 {
		t.Errorf("NewError = %+v", e)
	}
	if fmt.Sprintf("%v", e.Retryable) != "false" {
		t.Errorf("400 marked retryable")
	}
}
