package api

import (
	"context"
	"strings"
	"testing"
	"time"
)

// steppedJob starts a job whose publishes are driven one at a time from
// the test: publish(u) returns only after the runner published it, and
// finish() lets the job complete. Tests can therefore read job state
// between steps without racing the runner goroutine.
func steppedJob(t *testing.T, start func(run RunFunc) (*Job, error)) (job *Job, publish func(Update), finish func()) {
	t.Helper()
	step := make(chan Update)
	published := make(chan struct{})
	job, err := start(func(ctx context.Context, pub Publisher) (any, Update, error) {
		for u := range step {
			pub.Publish(u)
			published <- struct{}{}
		}
		return "ok", Update{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	publish = func(u Update) {
		step <- u
		<-published
	}
	return job, publish, func() { close(step) }
}

// TestSubscribeFromReplaysDelta: a reader that saw updates through seq N
// and reconnects with from=N receives exactly the updates it missed, in
// order — no duplicates, no full-snapshot re-send.
func TestSubscribeFromReplaysDelta(t *testing.T) {
	m := NewManager(ManagerOptions{})
	job, publish, finish := steppedJob(t, func(run RunFunc) (*Job, error) {
		return m.Start(JobPareto, "gcc", 100, run)
	})
	for i := 1; i <= 5; i++ {
		publish(Update{Evaluated: i * 10})
	}

	replay, ch, cancel := job.SubscribeFrom(2)
	defer cancel()
	if len(replay) != 3 {
		t.Fatalf("replay has %d updates, want 3 (seqs 3..5): %+v", len(replay), replay)
	}
	for i, u := range replay {
		if u.Seq != 3+i {
			t.Fatalf("replay[%d].Seq = %d, want %d", i, u.Seq, 3+i)
		}
		if u.Evaluated != (3+i)*10 {
			t.Fatalf("replay[%d].Evaluated = %d, want %d", i, u.Evaluated, (3+i)*10)
		}
	}

	// Live updates continue after the replayed ones with no gap.
	publish(Update{Evaluated: 60})
	select {
	case u := <-ch:
		if u.Seq != 6 {
			t.Fatalf("first live update has seq %d, want 6", u.Seq)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no live update after replay")
	}
	finish()
	<-job.Done()
}

// TestSubscribeFromPastHorizonFallsBackToSnapshot: when the requested
// seq predates the retained history ring, the replay degrades to the
// single latest cumulative snapshot — correct, just not a delta.
func TestSubscribeFromPastHorizonFallsBackToSnapshot(t *testing.T) {
	m := NewManager(ManagerOptions{})
	job, publish, finish := steppedJob(t, func(run RunFunc) (*Job, error) {
		return m.Start(JobPareto, "gcc", 100, run)
	})
	total := historyCap + 20
	for i := 1; i <= total; i++ {
		publish(Update{Evaluated: i})
	}

	// from=2 fell off the ring (only the last historyCap survive).
	replay, _, cancel := job.SubscribeFrom(2)
	defer cancel()
	if len(replay) != 1 {
		t.Fatalf("past-horizon replay has %d updates, want 1 (latest snapshot)", len(replay))
	}
	if replay[0].Seq != total || replay[0].Evaluated != total {
		t.Fatalf("fallback snapshot is %+v, want seq %d", replay[0], total)
	}

	// A from inside the ring still gets the true delta.
	replay, _, cancel2 := job.SubscribeFrom(total - 3)
	defer cancel2()
	if len(replay) != 3 || replay[0].Seq != total-2 {
		t.Fatalf("in-ring replay wrong: %+v", replay)
	}
	finish()
	<-job.Done()
}

// TestSubscribeFromNegativeActsLikeFreshSubscribe: from=-1 (no prior
// stream position) primes with the latest snapshot, matching Subscribe.
func TestSubscribeFromNegativeActsLikeFreshSubscribe(t *testing.T) {
	m := NewManager(ManagerOptions{})
	job, publish, finish := steppedJob(t, func(run RunFunc) (*Job, error) {
		return m.Start(JobPareto, "gcc", 50, run)
	})
	publish(Update{Evaluated: 10})
	publish(Update{Evaluated: 20})
	replay, _, cancel := job.SubscribeFrom(-1)
	defer cancel()
	if len(replay) != 1 || replay[0].Seq != 2 {
		t.Fatalf("negative-from replay is %+v, want just the latest snapshot", replay)
	}
	finish()
	<-job.Done()
}

// TestStartAdoptedContinuesSequence: an adopted job keeps the orphan's
// ID and continues its update sequence past the owner's last replicated
// seq, so a failed-over stream reader's dedup-by-seq logic never
// glitches.
func TestStartAdoptedContinuesSequence(t *testing.T) {
	m := NewManager(ManagerOptions{})
	job, publish, finish := steppedJob(t, func(run RunFunc) (*Job, error) {
		return m.StartAdopted("pareto-owner-1", JobPareto, "gcc", 100, 7, run)
	})
	if job.ID != "pareto-owner-1" {
		t.Fatalf("adopted job has ID %q, want the orphan's", job.ID)
	}
	publish(Update{Evaluated: 80})
	replay, _, cancel := job.SubscribeFrom(-1)
	defer cancel()
	if len(replay) != 1 || replay[0].Seq != 8 {
		t.Fatalf("first adopted update has seq %d, want 8 (owner left off at 7)", replay[0].Seq)
	}
	// Seq through the Publisher matches, so the adopter's replicator
	// stamps continuation payloads correctly too.
	if got := job.Seq(); got != 8 {
		t.Fatalf("publisher seq %d, want 8", got)
	}
	finish()
	<-job.Done()

	// The ID is taken while the job is retained: a second adoption of the
	// same orphan (two replicas racing) fails loudly.
	_, err := m.StartAdopted("pareto-owner-1", JobPareto, "gcc", 100, 7, nil)
	if err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Fatalf("duplicate adoption error = %v, want already-exists", err)
	}
	if _, err := m.StartAdopted("", JobPareto, "gcc", 100, 0, nil); err == nil {
		t.Error("adoption without a job ID was accepted")
	}
}

// TestStartAdoptedBypassesAdmissionGate: a node saturated at MaxRunning
// must still rescue an orphan — adoption is not a submission.
func TestStartAdoptedBypassesAdmissionGate(t *testing.T) {
	m := NewManager(ManagerOptions{MaxRunning: 1})
	release := make(chan struct{})
	hold := func(ctx context.Context, pub Publisher) (any, Update, error) {
		<-release
		return nil, Update{}, nil
	}
	if _, err := m.Start(JobPareto, "gcc", 10, hold); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start(JobPareto, "gcc", 10, hold); err == nil {
		t.Fatal("second submission got past MaxRunning=1")
	}
	adopted, err := m.StartAdopted("orphan-1", JobPareto, "gcc", 10, 0, hold)
	if err != nil {
		t.Fatalf("saturated node refused an adoption: %v", err)
	}
	close(release)
	<-adopted.Done()
}
