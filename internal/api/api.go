// Package api defines the daemon's versioned HTTP surface: the /v1
// route map, the structured error model every /v1 endpoint answers with,
// request-ID propagation, content negotiation, and the async job
// subsystem behind POST /v1/sweeps and /v1/pareto. It is shared by the
// serving layer (cmd/dsed, worker and coordinator modes alike) and the
// typed Go client (pkg/dsedclient), so the two sides of the wire cannot
// drift apart.
//
// Versioning policy: /v1 routes are stable — fields may be added to
// responses, never removed or re-typed. The original unversioned routes
// (/predict, /sweep, /pareto, ...) remain as deprecation shims that
// delegate to the /v1 handlers and answer with their historical payloads;
// they carry a "Deprecation" header pointing at their successor.
package api

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"sync"
)

// Version is the current API version prefix.
const Version = "/v1"

// MaxRequestBody bounds every POST body; oversized requests are rejected
// with 413 before they reach the JSON decoder.
const MaxRequestBody = 1 << 20

// Error codes of the structured /v1 error model. Codes are stable wire
// contract; the HTTP status is advisory beside them.
const (
	CodeBadRequest       = "bad_request"
	CodeNotFound         = "not_found"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeTooLarge         = "too_large"
	CodeNotAcceptable    = "not_acceptable"
	CodeTooManyJobs      = "too_many_jobs"
	CodeUnavailable      = "unavailable"
	CodeBadGateway       = "bad_gateway"
	CodeInternal         = "internal"
)

// Error is the structured error body every /v1 endpoint answers with.
// Retryable tells a client whether backing off and re-sending the same
// request can succeed (the fleet was busy or mid-churn) or is pointless
// (the request itself is at fault).
type Error struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
	RequestID string `json:"request_id,omitempty"`
	// Status echoes the HTTP status the error travelled with, so an
	// error read off a job stream (where there is no per-update status
	// line) still maps onto the legacy status semantics.
	Status int `json:"status,omitempty"`
}

// ErrorEnvelope wraps the structured error body on the wire:
// {"error": {"code": ..., "message": ..., ...}}.
type ErrorEnvelope struct {
	Error Error `json:"error"`
}

// CodeForStatus maps an HTTP status onto its stable error code.
func CodeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusMethodNotAllowed:
		return CodeMethodNotAllowed
	case http.StatusRequestEntityTooLarge:
		return CodeTooLarge
	case http.StatusNotAcceptable:
		return CodeNotAcceptable
	case http.StatusTooManyRequests:
		return CodeTooManyJobs
	case http.StatusServiceUnavailable:
		return CodeUnavailable
	case http.StatusBadGateway:
		return CodeBadGateway
	default:
		return CodeInternal
	}
}

// RetryableStatus reports whether a status signals a transient condition
// worth retrying with backoff.
func RetryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// NewError builds the structured body for one failure.
func NewError(status int, requestID, format string, args ...any) Error {
	return Error{
		Code:      CodeForStatus(status),
		Message:   fmt.Sprintf(format, args...),
		Retryable: RetryableStatus(status),
		RequestID: requestID,
		Status:    status,
	}
}

// reqLogKey carries the structured request logger through the request
// context, so response writers deep in a handler can report I/O faults.
type reqLogKey struct{}

// WithLogger attaches the structured request logger to a context.
func WithLogger(ctx context.Context, l *log.Logger) context.Context {
	return context.WithValue(ctx, reqLogKey{}, l)
}

// Logger recovers the request logger (nil when absent or running quiet).
func Logger(ctx context.Context) *log.Logger {
	l, _ := ctx.Value(reqLogKey{}).(*log.Logger)
	return l
}

// reqIDKey carries the per-request ID through the request context.
type reqIDKey struct{}

// WithRequestID attaches a request ID to a context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, reqIDKey{}, id)
}

// RequestID recovers the request's ID ("" when the middleware did not
// run, e.g. in direct handler tests).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

// RequestIDHeader is how clients supply (and the daemon echoes) the
// request ID.
const RequestIDHeader = "X-Request-ID"

// maxRequestIDLen bounds a client-supplied request ID so a hostile header
// cannot bloat every log line and error body.
const maxRequestIDLen = 64

// NewRequestID mints a fresh request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; a constant ID keeps
		// requests serviceable and is still greppable.
		return "req-entropy-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// SanitizeRequestID accepts a client-supplied ID if it is printable,
// header-safe and reasonably sized; otherwise it returns "" and the
// middleware mints one.
func SanitizeRequestID(id string) string {
	if id == "" || len(id) > maxRequestIDLen {
		return ""
	}
	for _, r := range id {
		if r <= ' ' || r > '~' || r == '"' || r == '\\' {
			return ""
		}
	}
	return id
}

// Content types the daemon speaks.
const (
	ContentJSON   = "application/json"
	ContentNDJSON = "application/x-ndjson"
)

// Negotiable reports whether the request's Accept header admits the
// offered content type. Absent and wildcard Accept headers admit
// everything; parameters (q-values) are ignored — the daemon has exactly
// one representation per endpoint, so negotiation is a yes/no question.
// application/json is additionally admitted for the NDJSON offer: every
// NDJSON line is a JSON document, and streaming clients routinely send
// Accept: application/json.
func Negotiable(r *http.Request, offer string) bool {
	accept := r.Header.Get("Accept")
	if accept == "" {
		return true
	}
	for _, part := range strings.Split(accept, ",") {
		mediaType := strings.TrimSpace(part)
		if i := strings.IndexByte(mediaType, ';'); i >= 0 {
			mediaType = strings.TrimSpace(mediaType[:i])
		}
		switch {
		case mediaType == "*/*" || mediaType == "application/*":
			return true
		case strings.EqualFold(mediaType, offer):
			return true
		case offer == ContentNDJSON && strings.EqualFold(mediaType, ContentJSON):
			return true
		}
	}
	return false
}

// encBufPool recycles the scratch buffers behind EncodeJSON. Responses
// and stream updates are minted at model-query rates during a sweep, so
// the per-write buffer would otherwise be the serving layer's dominant
// steady-state allocation.
var encBufPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// maxPooledEncodeBuf caps the capacity a buffer may keep when returned to
// the pool: one oversized frontier payload must not stay pinned in memory
// for the daemon's lifetime.
const maxPooledEncodeBuf = 1 << 20

// EncodeJSON marshals v through a pooled scratch buffer and writes it to
// w in a single Write as a newline-terminated JSON document (the
// json.Encoder framing, so it is also one well-formed NDJSON line). An
// encode error reports a bad value with nothing written; a write error
// reports the connection.
func EncodeJSON(w io.Writer, v any) error {
	buf := encBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	err := json.NewEncoder(buf).Encode(v)
	if err == nil {
		_, err = w.Write(buf.Bytes())
	}
	if buf.Cap() <= maxPooledEncodeBuf {
		encBufPool.Put(buf)
	}
	return err
}

// WriteJSON writes one response body. Encode failures after the header is
// committed cannot be turned into an error status, but they must not
// vanish either — a NaN score or a mid-body disconnect is logged through
// the structured request logger.
func WriteJSON(w http.ResponseWriter, r *http.Request, status int, v any) {
	w.Header().Set("Content-Type", ContentJSON)
	w.WriteHeader(status)
	if err := EncodeJSON(w, v); err != nil {
		if logger := Logger(r.Context()); logger != nil {
			logger.Printf("req=%s encoding %s response: %v", RequestID(r.Context()), r.URL.Path, err)
		}
	}
}

// WriteError writes the structured /v1 error envelope, tagging it with
// the request's ID.
func WriteError(w http.ResponseWriter, r *http.Request, status int, format string, args ...any) {
	WriteJSON(w, r, status, ErrorEnvelope{Error: NewError(status, RequestID(r.Context()), format, args...)})
}

// WriteLegacyError writes the historical unversioned error envelope,
// {"error": "<message>"} — the deprecation shims' contract. The request
// ID still travels in the X-Request-ID response header.
func WriteLegacyError(w http.ResponseWriter, r *http.Request, status int, format string, args ...any) {
	//dsedlint:ignore httperr the deprecated unversioned routes' envelope is frozen; this is the one sanctioned writer for it
	WriteJSON(w, r, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// ErrorWriter is the error-envelope seam between the /v1 handlers and
// the legacy shims that delegate to them: same handler logic, versioned
// or historical envelope.
type ErrorWriter func(w http.ResponseWriter, r *http.Request, status int, format string, args ...any)

// DecodePost enforces POST, a bounded body, and strict JSON; it writes
// the error response through fail itself and reports whether the handler
// should continue.
func DecodePost(w http.ResponseWriter, r *http.Request, v any, fail ErrorWriter) bool {
	if r.Method != http.MethodPost {
		fail(w, r, http.StatusMethodNotAllowed, "use POST with a JSON body")
		return false
	}
	r.Body = http.MaxBytesReader(w, r.Body, MaxRequestBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			fail(w, r, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return false
		}
		fail(w, r, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// RequireGet enforces GET on read-only endpoints.
func RequireGet(w http.ResponseWriter, r *http.Request, fail ErrorWriter) bool {
	if r.Method != http.MethodGet {
		fail(w, r, http.StatusMethodNotAllowed, "use GET")
		return false
	}
	return true
}
