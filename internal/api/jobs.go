package api

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// The job subsystem behind POST /v1/sweeps and /v1/pareto: exploration
// requests return a job ID immediately and run detached from the
// submitting request, publishing cumulative progress snapshots (partial
// frontiers / top-K) that GET /v1/jobs/{id}/stream replays as NDJSON.
// Every published Update is a complete snapshot, not a delta, so a
// subscriber that joins late — or reconnects after a disconnect — is
// current after its first line.

// JobKind names what a job computes.
type JobKind string

const (
	// JobSweep is a constrained top-K selection job (POST /v1/sweeps).
	JobSweep JobKind = "sweep"
	// JobPareto is a Pareto-frontier job (POST /v1/pareto).
	JobPareto JobKind = "pareto"
)

// JobState is a job's lifecycle phase.
type JobState string

const (
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool { return s != StateRunning && s != "" }

// Update is one NDJSON line of GET /v1/jobs/{id}/stream: a cumulative
// snapshot of the job so far. Candidates is the current partial frontier
// (Pareto) or feasible top-K (sweep); on the Final update it is the
// complete answer.
type Update struct {
	JobID string   `json:"job_id"`
	Seq   int      `json:"seq"`
	State JobState `json:"state"`
	// Evaluated counts designs scored so far; Designs is the job total.
	Evaluated int `json:"evaluated"`
	Designs   int `json:"designs,omitempty"`
	Feasible  int `json:"feasible,omitempty"`
	// Shards/Retries/Workers carry a coordinator job's distribution
	// accounting (zero on single-daemon jobs).
	Shards  int `json:"shards,omitempty"`
	Retries int `json:"retries,omitempty"`
	Workers int `json:"workers,omitempty"`
	// Worker names the fleet member whose merged partial produced this
	// snapshot; Delta is how many designs that partial contributed.
	Worker string `json:"worker,omitempty"`
	Delta  int    `json:"delta,omitempty"`
	// Objectives labels the score columns (set once resolved).
	Objectives []string `json:"objectives,omitempty"`
	// Candidates is the cumulative partial result, already merged.
	Candidates []wire.Candidate `json:"candidates,omitempty"`
	// Final marks the last update of the stream.
	Final     bool    `json:"final,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
	Error     *Error  `json:"error,omitempty"`
	// Spans carries the job's finished trace spans on the Final update of
	// a worker job, so a coordinator that dispatched the job as a shard
	// can splice them into its own trace tree.
	Spans []obs.Span `json:"spans,omitempty"`
}

// JobStatus answers GET /v1/jobs/{id}.
type JobStatus struct {
	ID        string   `json:"id"`
	Kind      JobKind  `json:"kind"`
	Benchmark string   `json:"benchmark,omitempty"`
	State     JobState `json:"state"`
	CreatedAt string   `json:"created_at"`
	Designs   int      `json:"designs"`
	Evaluated int      `json:"evaluated"`
	Feasible  int      `json:"feasible,omitempty"`
	Shards    int      `json:"shards,omitempty"`
	Retries   int      `json:"retries,omitempty"`
	// Updates is the stream's current sequence number.
	Updates int `json:"updates"`
	// Attribution maps worker name to designs evaluated there
	// (coordinator jobs only).
	Attribution map[string]int `json:"attribution,omitempty"`
	ElapsedMS   float64        `json:"elapsed_ms,omitempty"`
	Error       *Error         `json:"error,omitempty"`
	// Result is the job's final payload (the legacy response shape),
	// present once State is "done".
	Result any `json:"result,omitempty"`
}

// Publisher is a running job's progress sink. Streaming lets a runner
// skip building expensive snapshot payloads (partial frontiers) while
// nobody is attached to the stream — counters should still be published
// so pollers see progress.
type Publisher interface {
	Publish(Update)
	// Streaming reports whether any stream subscriber is attached right
	// now (it can flip either way mid-job).
	Streaming() bool
	// JobID names the job being published to — runners use it to tag
	// trace spans and bind them in the trace store.
	JobID() string
	// Seq is the stream's current sequence number. A replicating runner
	// stamps it into each replication payload so an adopter can continue
	// the same sequence — a client that failed over mid-stream then keeps
	// its dedup-by-seq logic without knowing the owner changed.
	Seq() int
}

// RunFunc computes one job: it publishes cumulative snapshots through pub
// as it goes and returns the final snapshot (counters and complete
// candidates, State/Final left for the manager to stamp) plus the result
// payload served by GET /v1/jobs/{id} and the legacy shims.
type RunFunc func(ctx context.Context, pub Publisher) (result any, final Update, err error)

// ManagerOptions tunes the job subsystem.
type ManagerOptions struct {
	// MaxRunning bounds concurrently running jobs; submissions beyond it
	// answer 429 too_many_jobs (retryable). Default 64.
	MaxRunning int
	// BaseContext is the parent of every job's context (default
	// context.Background()). Cancel it — the daemon's shutdown signal —
	// and every running job settles "canceled" with a final update.
	BaseContext context.Context
	// Retention keeps finished jobs queryable for late GET/stream calls.
	// Default 10 minutes.
	Retention time.Duration
	// MaxJobs caps stored jobs; beyond it the oldest finished jobs are
	// evicted early. Default 512.
	MaxJobs int
	// ErrorStatus maps a job error onto the HTTP status the same failure
	// answered on the legacy blocking routes. Default: 500.
	ErrorStatus func(error) int
	// Clock overrides time.Now in tests.
	Clock func() time.Time
	// Obs, when set, receives job subsystem metrics: running jobs,
	// finished jobs by state, and stream subscriber lag (coalesced
	// updates dropped on slow subscribers).
	Obs *obs.Registry
}

// ErrTooManyJobs rejects submissions while MaxRunning jobs are in flight.
var ErrTooManyJobs = errors.New("api: too many running jobs, retry later")

// ErrUnknownJob answers lookups for IDs never issued or already evicted.
var ErrUnknownJob = errors.New("api: unknown job")

// Manager owns the job table: submission, lookup, cancellation, retention.
type Manager struct {
	opts ManagerOptions

	// Metric handles are nil (and discard) when ManagerOptions.Obs is.
	mRunning     *obs.Gauge
	mFinished    map[JobState]*obs.Counter
	mDropped     *obs.Counter
	mSubscribers *obs.Gauge

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string // creation order, for bounded eviction
	running int
	seq     int
}

// NewManager builds the job table.
func NewManager(opts ManagerOptions) *Manager {
	if opts.MaxRunning <= 0 {
		opts.MaxRunning = 64
	}
	if opts.Retention <= 0 {
		opts.Retention = 10 * time.Minute
	}
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = 512
	}
	if opts.ErrorStatus == nil {
		opts.ErrorStatus = func(error) int { return http.StatusInternalServerError }
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.BaseContext == nil {
		//dsedlint:ignore ctxflow jobs outlive their submitting request by design; BaseContext is the detachment seam and callers override it
		opts.BaseContext = context.Background()
	}
	m := &Manager{opts: opts, jobs: make(map[string]*Job)}
	m.mRunning = opts.Obs.Gauge("dsed_jobs_running", "Jobs currently in the running state.")
	m.mDropped = opts.Obs.Counter("dsed_jobs_stream_dropped_total",
		"Intermediate updates coalesced away because a stream subscriber lagged.")
	m.mSubscribers = opts.Obs.Gauge("dsed_jobs_stream_subscribers", "Attached job stream subscribers.")
	m.mFinished = make(map[JobState]*obs.Counter, 3)
	for _, st := range []JobState{StateDone, StateFailed, StateCanceled} {
		m.mFinished[st] = opts.Obs.Counter("dsed_jobs_finished_total",
			"Jobs settled, by terminal state.", obs.Label{Key: "state", Value: string(st)})
	}
	return m
}

// Job is one asynchronous exploration: its identity, live progress, the
// stream subscribers, and — once finished — the result or error.
type Job struct {
	ID        string
	Kind      JobKind
	Benchmark string

	created   time.Time
	clock     func() time.Time
	cancel    context.CancelFunc
	done      chan struct{}
	dropped   *obs.Counter
	subsGauge *obs.Gauge
	// counted jobs occupy a MaxRunning admission slot; unbounded (legacy
	// shim) jobs do not, so shim traffic cannot starve /v1 submissions.
	counted bool

	mu          sync.Mutex
	state       JobState
	cancelled   bool
	seq         int
	designs     int
	evaluated   int
	feasible    int
	shards      int
	retries     int
	attribution map[string]int
	last        *Update
	history     []Update // bounded recent-update ring for ?from_seq= replay
	result      any
	errBody     *Error
	finished    time.Time
	elapsedMS   float64
	subs        map[int]chan Update
	nextSub     int
}

// Start submits a job: run executes on its own goroutine under a context
// detached from the submitting request (the whole point of the async
// API) and cancelled only by DELETE /v1/jobs/{id} or BaseContext dying
// (daemon shutdown). Submissions beyond MaxRunning answer ErrTooManyJobs.
func (m *Manager) Start(kind JobKind, benchmark string, designs int, run RunFunc) (*Job, error) {
	return m.start("", kind, benchmark, designs, 0, run, true)
}

// StartUnbounded is Start without the MaxRunning admission gate — the
// legacy blocking shims use it, because the historical synchronous
// routes were bounded only by HTTP concurrency and the shims must not
// invent a new 429 failure mode (nor occupy /v1 submission slots).
func (m *Manager) StartUnbounded(kind JobKind, benchmark string, designs int, run RunFunc) (*Job, error) {
	return m.start("", kind, benchmark, designs, 0, run, false)
}

// StartAdopted submits a job under a caller-supplied identity: the ID of
// the orphaned job being adopted, with the update sequence pre-advanced
// past the owner's last replicated Seq. Streaming clients that fail over
// keep their job ID and their skip-duplicates-by-seq logic; they never
// learn the owner changed. Adoption bypasses the MaxRunning gate — a
// node must not refuse to rescue an orphan because it is busy.
func (m *Manager) StartAdopted(id string, kind JobKind, benchmark string, designs, startSeq int, run RunFunc) (*Job, error) {
	if id == "" {
		return nil, errors.New("api: adoption needs the orphaned job's id")
	}
	return m.start(id, kind, benchmark, designs, startSeq, run, false)
}

//dsedlint:ignore ctxflow the job deliberately detaches from the submitting request; its lifetime is BaseContext + per-job cancel
func (m *Manager) start(id string, kind JobKind, benchmark string, designs, startSeq int, run RunFunc, enforceLimit bool) (*Job, error) {
	m.mu.Lock()
	m.evictLocked()
	if enforceLimit && m.running >= m.opts.MaxRunning {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w (%d in flight)", ErrTooManyJobs, m.opts.MaxRunning)
	}
	m.seq++
	if id == "" {
		id = fmt.Sprintf("%s-%d-%s", kind, m.seq, NewRequestID()[:8])
	} else if m.jobs[id] != nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("api: job %q already exists", id)
	}
	now := m.opts.Clock()
	job := &Job{
		ID:        id,
		Kind:      kind,
		Benchmark: benchmark,
		created:   now,
		clock:     m.opts.Clock,
		done:      make(chan struct{}),
		dropped:   m.mDropped,
		subsGauge: m.mSubscribers,
		state:     StateRunning,
		seq:       startSeq,
		designs:   designs,
		subs:      make(map[int]chan Update),
		counted:   enforceLimit,
	}
	ctx, cancel := context.WithCancel(m.opts.BaseContext)
	job.cancel = cancel
	m.jobs[job.ID] = job
	m.order = append(m.order, job.ID)
	if job.counted {
		m.running++
	}
	m.mu.Unlock()
	m.mRunning.Add(1)

	go func() {
		defer cancel()
		result, final, err := m.protect(ctx, run, job)
		m.finish(job, result, final, err)
	}()
	return job, nil
}

// protect runs the job body, converting a panic into a job failure
// instead of crashing the daemon (jobs run outside net/http's built-in
// per-request recovery).
func (m *Manager) protect(ctx context.Context, run RunFunc, job *Job) (result any, final Update, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("api: job %s panicked: %v", job.ID, r)
		}
	}()
	return run(ctx, job)
}

// finish settles the job: stamps the terminal state, publishes the final
// update (never dropped — subscribers' newest-wins buffers retain it),
// and releases the running slot.
func (m *Manager) finish(job *Job, result any, final Update, err error) {
	job.mu.Lock()
	state := StateDone
	if err != nil {
		state = StateFailed
		// DELETE, daemon shutdown (BaseContext), or a context error all
		// settle "canceled" — the job was aborted, not broken.
		if job.cancelled || errors.Is(err, context.Canceled) {
			state = StateCanceled
		}
		status := m.opts.ErrorStatus(err)
		e := NewError(status, "", "%v", err)
		job.errBody = &e
		final.Error = &e
	}
	job.state = state
	job.result = result
	job.finished = job.clock()
	job.elapsedMS = float64(job.finished.Sub(job.created).Microseconds()) / 1000
	if final.ElapsedMS == 0 {
		final.ElapsedMS = job.elapsedMS
	}
	final.State = state
	final.Final = true
	job.publishLocked(final)
	for id, ch := range job.subs {
		close(ch)
		delete(job.subs, id)
		job.subsGauge.Add(-1)
	}
	close(job.done)
	job.mu.Unlock()

	m.mRunning.Add(-1)
	m.mFinished[state].Inc()
	if job.counted {
		m.mu.Lock()
		m.running--
		m.mu.Unlock()
	}
}

// Get looks a job up.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.evictLocked()
	job, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	return job, nil
}

// Cancel requests a job's cancellation. A running job settles
// asynchronously — its stream still ends with a final "canceled" update.
// DELETE on an already-finished job removes it from the table (DELETE is
// resource removal), so consumers that have read their result can
// release it instead of pinning the payload for the retention window.
func (m *Manager) Cancel(id string) (*Job, error) {
	job, err := m.Get(id)
	if err != nil {
		return nil, err
	}
	job.mu.Lock()
	terminal := job.state.Terminal()
	if !terminal {
		job.cancelled = true
	}
	job.mu.Unlock()
	job.cancel()
	if terminal {
		m.Forget(id)
	}
	return job, nil
}

// Forget drops a finished job from the table immediately, releasing its
// retained result; running jobs are left alone. The legacy blocking
// shims call it after writing their response — historically the
// synchronous routes retained nothing.
func (m *Manager) Forget(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return
	}
	job.mu.Lock()
	terminal := job.state.Terminal()
	job.mu.Unlock()
	if !terminal {
		return
	}
	delete(m.jobs, id)
	for i, jid := range m.order {
		if jid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
}

// RunningByBenchmark counts running jobs per benchmark — the per-worker
// queue depth heartbeats advertise to the coordinator.
func (m *Manager) RunningByBenchmark() map[string]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	depths := make(map[string]int)
	for _, job := range m.jobs {
		job.mu.Lock()
		if job.state == StateRunning && job.Benchmark != "" {
			depths[job.Benchmark]++
		}
		job.mu.Unlock()
	}
	return depths
}

// ListFilter narrows GET /v1/jobs. Zero fields match everything.
type ListFilter struct {
	// State keeps only jobs in this lifecycle phase.
	State JobState
	// Benchmark keeps only jobs over this benchmark.
	Benchmark string
	// Kind keeps only sweep or pareto jobs.
	Kind JobKind
	// Limit bounds the page (default 50, hard cap 500).
	Limit int
}

// listLimits bound the GET /v1/jobs page size.
const (
	DefaultListLimit = 50
	MaxListLimit     = 500
)

// List snapshots jobs matching the filter, newest first, without
// results (results stay behind GET /v1/jobs/{id}).
func (m *Manager) List(f ListFilter) []JobStatus {
	limit := f.Limit
	if limit <= 0 {
		limit = DefaultListLimit
	}
	if limit > MaxListLimit {
		limit = MaxListLimit
	}
	m.mu.Lock()
	m.evictLocked()
	ids := make([]string, len(m.order))
	copy(ids, m.order)
	jobs := make([]*Job, 0, len(ids))
	for i := len(ids) - 1; i >= 0; i-- { // newest first
		if job, ok := m.jobs[ids[i]]; ok {
			jobs = append(jobs, job)
		}
	}
	m.mu.Unlock()

	out := make([]JobStatus, 0, min(limit, len(jobs)))
	for _, job := range jobs {
		if len(out) >= limit {
			break
		}
		if f.Kind != "" && job.Kind != f.Kind {
			continue
		}
		if f.Benchmark != "" && job.Benchmark != f.Benchmark {
			continue
		}
		st := job.Status(false)
		if f.State != "" && st.State != f.State {
			continue
		}
		out = append(out, st)
	}
	return out
}

// evictLocked drops finished jobs past retention, and — beyond the stored
// cap — the oldest finished jobs early. Running jobs are never evicted.
func (m *Manager) evictLocked() {
	now := m.opts.Clock()
	kept := m.order[:0]
	for _, id := range m.order {
		job := m.jobs[id]
		if job == nil {
			continue
		}
		job.mu.Lock()
		expired := job.state.Terminal() && now.Sub(job.finished) > m.opts.Retention
		job.mu.Unlock()
		if expired {
			delete(m.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
	for i := 0; len(m.order) > m.opts.MaxJobs && i < len(m.order); {
		id := m.order[i]
		job := m.jobs[id]
		job.mu.Lock()
		finished := job.state.Terminal()
		job.mu.Unlock()
		if !finished {
			i++
			continue
		}
		delete(m.jobs, id)
		m.order = append(m.order[:i], m.order[i+1:]...)
	}
}

// Streaming implements Publisher.
func (j *Job) Streaming() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.subs) > 0
}

// Publish implements Publisher: it records one cumulative snapshot and
// fans it out to stream subscribers. Intermediate updates may be
// coalesced per subscriber (newest wins); the final update always
// survives because nothing is published after it.
func (j *Job) Publish(u Update) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return // the job already settled; a straggling snapshot is stale
	}
	u.State = StateRunning
	j.publishLocked(u)
}

func (j *Job) publishLocked(u Update) {
	j.seq++
	u.JobID = j.ID
	u.Seq = j.seq
	// The design total may only materialise inside the job (named spaces
	// resolve after model resolution); adopt it from the first update
	// that knows it.
	if u.Designs > j.designs {
		j.designs = u.Designs
	} else if u.Designs == 0 {
		u.Designs = j.designs
	}
	// Progress counters are cumulative and monotone; keeping the maximum
	// also stops a failed or cancelled job's zero-valued terminal update
	// from wiping the progress it actually made.
	j.evaluated = max(j.evaluated, u.Evaluated)
	u.Evaluated = j.evaluated
	j.feasible = max(j.feasible, u.Feasible)
	u.Feasible = j.feasible
	j.shards = max(j.shards, u.Shards)
	u.Shards = j.shards
	j.retries = max(j.retries, u.Retries)
	u.Retries = j.retries
	if u.Worker != "" && u.Delta > 0 {
		if j.attribution == nil {
			j.attribution = make(map[string]int)
		}
		j.attribution[u.Worker] += u.Delta
	}
	j.last = &u
	j.history = append(j.history, u)
	if len(j.history) > historyCap {
		j.history = j.history[len(j.history)-historyCap:]
	}
	for _, ch := range j.subs {
		select {
		case ch <- u:
		default:
			// Slow subscriber: drop its oldest pending update and offer
			// the newest again — snapshots are cumulative, so skipping
			// intermediates loses nothing.
			j.dropped.Inc()
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- u:
			default:
			}
		}
	}
}

// Subscribe attaches a stream reader: the channel is primed with the
// latest snapshot (so a late or reconnecting subscriber is current
// immediately), then receives subsequent updates, and closes after the
// final one. The returned cancel detaches the subscriber.
func (j *Job) Subscribe() (<-chan Update, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan Update, 8)
	if j.last != nil {
		ch <- *j.last
	}
	if j.state.Terminal() {
		close(ch)
		return ch, func() {}
	}
	id := j.nextSub
	j.nextSub++
	j.subs[id] = ch
	j.subsGauge.Add(1)
	return ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(ch)
			j.subsGauge.Add(-1)
		}
	}
}

// historyCap bounds per-job retained updates for SubscribeFrom replay.
// Updates are cumulative snapshots, so a reconnecting reader past the
// horizon loses nothing by falling back to the latest one; the ring only
// exists to spare well-behaved reconnects the full-snapshot re-send.
const historyCap = 64

// SubscribeFrom is Subscribe for a reader resuming after a dropped
// connection: replay holds the retained updates with Seq > from, oldest
// first, and ch then delivers everything after those. If from predates
// the retained history (or is negative), replay degrades to the latest
// cumulative snapshot alone — still correct, just not a delta. The
// subscriber is registered under the same lock that builds replay, so no
// update can fall between the two.
func (j *Job) SubscribeFrom(from int) ([]Update, <-chan Update, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var replay []Update
	switch {
	case j.last == nil:
		// nothing published yet
	case from >= 0 && len(j.history) > 0 && j.history[0].Seq <= from+1:
		for _, u := range j.history {
			if u.Seq > from {
				replay = append(replay, u)
			}
		}
	default:
		replay = []Update{*j.last}
	}
	ch := make(chan Update, 8)
	if j.state.Terminal() {
		close(ch)
		return replay, ch, func() {}
	}
	id := j.nextSub
	j.nextSub++
	j.subs[id] = ch
	j.subsGauge.Add(1)
	return replay, ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(ch)
			j.subsGauge.Add(-1)
		}
	}
}

// JobID implements Publisher.
func (j *Job) JobID() string { return j.ID }

// Seq implements Publisher: the stream's current sequence number.
func (j *Job) Seq() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Done closes when the job settles.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status snapshots the job. withResult includes the final payload (GET
// /v1/jobs/{id} and the legacy shims want it; submission echoes do not).
func (j *Job) Status(withResult bool) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.ID,
		Kind:      j.Kind,
		Benchmark: j.Benchmark,
		State:     j.state,
		CreatedAt: j.created.UTC().Format(time.RFC3339Nano),
		Designs:   j.designs,
		Evaluated: j.evaluated,
		Feasible:  j.feasible,
		Shards:    j.shards,
		Retries:   j.retries,
		Updates:   j.seq,
		ElapsedMS: j.elapsedMS,
		Error:     j.errBody,
	}
	if len(j.attribution) > 0 {
		st.Attribution = make(map[string]int, len(j.attribution))
		for k, v := range j.attribution {
			st.Attribution[k] = v
		}
	}
	if st.ElapsedMS == 0 {
		st.ElapsedMS = float64(j.clock().Sub(j.created).Microseconds()) / 1000
	}
	if withResult && j.state == StateDone {
		st.Result = j.result
	}
	return st
}

// Result returns the final payload and error body once the job settled.
func (j *Job) Result() (any, *Error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.errBody
}
