package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestHTTPErr(t *testing.T) {
	analysistest.Run(t, lint.HTTPErr, "httperr")
}
