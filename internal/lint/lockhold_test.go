package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestLockHold(t *testing.T) {
	analysistest.Run(t, lint.LockHold, "lockhold")
}
