package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, lint.CtxFlow, "ctxflow", "ctxflow_main")
}
