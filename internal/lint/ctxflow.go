package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// CtxFlow enforces the fleet's context-propagation discipline.
//
// Rule 1: context.Background() and context.TODO() are reserved for
// package main and _test.go files. Library code must thread the
// caller's context so cancellation reaches every dispatch hop
// (coordinator → shard → worker → registry). A legacy wrapper that
// deliberately detaches carries a //dsedlint:ignore directive naming
// why.
//
// Rule 2: a function that dispatches work — spawns a goroutine or
// submits a closure to a pool/errgroup-style .Go method — must accept a
// context.Context (directly or via an enclosing function literal's
// parameters), so the spawned work is cancellable by construction.
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "reserve context.Background/TODO for main and tests; " +
		"functions that spawn work must take a context.Context",
	Run: runCtxFlow,
}

func runCtxFlow(pass *analysis.Pass) (any, error) {
	isMain := pass.Pkg.Name() == "main"
	for _, file := range pass.Files {
		if analysis.IsTestFilename(pass.Fset.Position(file.Pos()).Filename) {
			continue
		}
		if !isMain {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if calleeIs(pass.TypesInfo, call, "context.Background") {
					pass.Reportf(call.Pos(), "context.Background() outside package main or a test: thread the caller's context instead")
				}
				if calleeIs(pass.TypesInfo, call, "context.TODO") {
					pass.Reportf(call.Pos(), "context.TODO() outside package main or a test: thread the caller's context instead")
				}
				return true
			})
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// main() and init() cannot take parameters; whatever they
			// spawn is the process's own lifetime.
			if fn.Recv == nil && (fn.Name.Name == "main" || fn.Name.Name == "init") {
				continue
			}
			checkDispatch(pass, fn)
		}
	}
	return nil, nil
}

// checkDispatch walks one top-level function, tracking the stack of
// enclosing function nodes (the declaration plus nested literals). A
// spawn point whose enclosing stack carries no context.Context
// parameter is reported once, at the function declaration.
func checkDispatch(pass *analysis.Pass, fn *ast.FuncDecl) {
	stack := []bool{signatureHasContext(funcSignature(pass.TypesInfo, fn))}
	reported := false

	anyCtx := func() bool {
		for _, has := range stack {
			if has {
				return true
			}
		}
		return false
	}
	report := func(kind string) {
		if reported || anyCtx() {
			return
		}
		reported = true
		pass.Reportf(fn.Name.Pos(), "%s dispatches work (%s) but takes no context.Context; accept and thread the caller's context", fn.Name.Name, kind)
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			stack = append(stack, signatureHasContext(funcSignature(pass.TypesInfo, n)))
			ast.Inspect(n.Body, walk)
			stack = stack[:len(stack)-1]
			return false
		case *ast.GoStmt:
			report("go statement")
		case *ast.CallExpr:
			// Errgroup-shaped submission: a method named Go taking a
			// single function value is a goroutine spawn by contract.
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Go" && len(n.Args) == 1 {
				if isFuncValue(pass, n.Args[0]) {
					report(".Go submission")
				}
			}
		}
		return true
	}
	ast.Inspect(fn.Body, walk)
}

// isFuncValue reports whether the expression has function type.
func isFuncValue(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Signature)
	return ok
}
