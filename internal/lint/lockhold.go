package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
)

// LockHold enforces the fleet's lock discipline, the invariant behind
// the collector-snapshot and member-table code paths: a sync.Mutex or
// sync.RWMutex critical section must stay short and non-blocking.
//
// Rule 1: while a lock is held, no blocking operation may run — channel
// send/receive, select without a default, range over a channel,
// WaitGroup.Wait, Cond.Wait, time.Sleep, or an outbound network call.
// Sends and receives on channels created inside the same function are
// exempt (a freshly made buffered channel cannot deadlock against an
// outside party), as is anything inside a select that has a default
// clause.
//
// Rule 2: every Lock()/RLock() must pair with an Unlock()/RUnlock() on
// all paths: a function that locks and can return while the lock is
// still held (no defer, no unlock before the return) is flagged, as is
// a function that locks and never unlocks at all.
//
// The check is a per-function lexical scan — function literals are
// analyzed as their own functions — so conditionally-acquired locks can
// confuse it; a //dsedlint:ignore lockhold directive with a reason is
// the escape hatch.
var LockHold = &analysis.Analyzer{
	Name: "lockhold",
	Doc: "no blocking operation while a sync.Mutex/RWMutex is held; " +
		"every Lock must pair with an Unlock on all paths",
	Run: runLockHold,
}

// Lock-acquire / lock-release method sets, by types.Func full name.
var (
	lockAcquire = []string{
		"(*sync.Mutex).Lock",
		"(*sync.RWMutex).Lock",
		"(*sync.RWMutex).RLock",
	}
	lockRelease = []string{
		"(*sync.Mutex).Unlock",
		"(*sync.RWMutex).Unlock",
		"(*sync.RWMutex).RUnlock",
	}
	// blockingCalls are callees that can park the goroutine indefinitely
	// (or for externally-controlled time) and must not run under a lock.
	blockingCalls = map[string]string{
		"(*sync.WaitGroup).Wait":        "WaitGroup.Wait",
		"(*sync.Cond).Wait":             "Cond.Wait",
		"time.Sleep":                    "time.Sleep",
		"(*net/http.Client).Do":         "network call",
		"(*net/http.Client).Get":        "network call",
		"(*net/http.Client).Post":       "network call",
		"(*net/http.Client).PostForm":   "network call",
		"(*net/http.Client).Head":       "network call",
		"net/http.Get":                  "network call",
		"net/http.Post":                 "network call",
		"net/http.PostForm":             "network call",
		"net/http.Head":                 "network call",
		"net.Dial":                      "network call",
		"net.DialTimeout":               "network call",
		"(*os/exec.Cmd).Run":            "subprocess wait",
		"(*os/exec.Cmd).Wait":           "subprocess wait",
		"(*os/exec.Cmd).Output":         "subprocess wait",
		"(*os/exec.Cmd).CombinedOutput": "subprocess wait",
	}
)

func runLockHold(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		if analysis.IsTestFilename(pass.Fset.Position(file.Pos()).Filename) {
			continue
		}
		// Every function — declarations and literals — is scanned
		// independently; a literal's body is excluded from its parent's
		// scan (it runs on its own goroutine's schedule).
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					scanLockFunc(pass, n.Body)
				}
			case *ast.FuncLit:
				scanLockFunc(pass, n.Body)
			}
			return true
		})
	}
	return nil, nil
}

const (
	evLock = iota
	evUnlock
	evDeferUnlock
	evReturn
	evBlock
)

type lockEvent struct {
	pos  token.Pos
	kind int
	key  string // lock expression ("c.mu") for lock events
	desc string // human description for evBlock
}

// scanLockFunc runs the lexical lock-state scan over one function body.
func scanLockFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	c := &lockCollector{
		pass:       pass,
		localChans: make(map[types.Object]bool),
		selectComm: make(map[ast.Node]bool),
	}
	c.collect(body)
	if !c.sawLock {
		return
	}
	sort.SliceStable(c.events, func(i, j int) bool { return c.events[i].pos < c.events[j].pos })

	// Pairing rule: a lock key with an acquire but no release anywhere
	// in the function (including nested literals — a deferred closure
	// that unlocks counts) never balances.
	releases := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && calleeIs(pass.TypesInfo, call, lockRelease...) {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				releases[exprKey(sel.X)] = true
			}
		}
		return true
	})

	held := map[string]bool{}     // key → currently held (inline)
	deferred := map[string]bool{} // key → a defer will release it
	flaggedReturn := map[string]bool{}
	for _, ev := range c.events {
		switch ev.kind {
		case evLock:
			held[ev.key] = true
			if !releases[ev.key] {
				pass.Reportf(ev.pos, "%s.Lock() with no matching Unlock anywhere in this function", ev.key)
			}
		case evDeferUnlock:
			if held[ev.key] {
				deferred[ev.key] = true
				delete(held, ev.key)
			}
		case evUnlock:
			delete(held, ev.key)
		case evReturn:
			for key := range held {
				if !flaggedReturn[key] {
					flaggedReturn[key] = true
					pass.Reportf(ev.pos, "return while %s is held: unlock before returning or defer the Unlock", key)
				}
			}
		case evBlock:
			for _, m := range []map[string]bool{held, deferred} {
				for key := range m {
					pass.Reportf(ev.pos, "%s while %s is held: release the lock before blocking", ev.desc, key)
				}
			}
		}
	}
}

type lockCollector struct {
	pass       *analysis.Pass
	events     []lockEvent
	sawLock    bool
	localChans map[types.Object]bool
	selectComm map[ast.Node]bool // comm-clause statements of non-blocking selects
}

func (c *lockCollector) add(ev lockEvent) {
	if ev.kind == evLock {
		c.sawLock = true
	}
	c.events = append(c.events, ev)
}

// localChan reports whether e is (an ident for) a channel made in this
// function.
func (c *lockCollector) localChan(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
		return c.localChans[obj]
	}
	return false
}

func (c *lockCollector) noteMake(lhs []ast.Expr, rhs []ast.Expr) {
	if len(lhs) != len(rhs) {
		return
	}
	for i, r := range rhs {
		call, ok := ast.Unparen(r).(*ast.CallExpr)
		if !ok {
			continue
		}
		if fn, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fn.Name != "make" {
			continue
		}
		if !isChanType(c.pass.TypesInfo.TypeOf(call)) {
			continue
		}
		if id, ok := lhs[i].(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
				c.localChans[obj] = true
			} else if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
				c.localChans[obj] = true
			}
		}
	}
}

func (c *lockCollector) collect(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // scanned as its own function
		case *ast.AssignStmt:
			c.noteMake(n.Lhs, n.Rhs)
		case *ast.ValueSpec:
			lhs := make([]ast.Expr, len(n.Names))
			for i, name := range n.Names {
				lhs[i] = name
			}
			c.noteMake(lhs, n.Values)
		case *ast.DeferStmt:
			c.collectDefer(n)
			return false
		case *ast.GoStmt:
			// The spawned call's expression is evaluated now, but the
			// body runs elsewhere; args may still block (rare) — skip.
			return false
		case *ast.SelectStmt:
			c.collectSelect(n)
		case *ast.SendStmt:
			if !c.selectComm[n] && !c.localChan(n.Chan) {
				c.add(lockEvent{pos: n.Pos(), kind: evBlock, desc: "channel send"})
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !c.selectComm[n] && !c.localChan(n.X) {
				c.add(lockEvent{pos: n.Pos(), kind: evBlock, desc: "channel receive"})
			}
		case *ast.RangeStmt:
			if isChanType(c.pass.TypesInfo.TypeOf(n.X)) && !c.localChan(n.X) {
				c.add(lockEvent{pos: n.Pos(), kind: evBlock, desc: "range over channel"})
			}
		case *ast.ReturnStmt:
			c.add(lockEvent{pos: n.Pos(), kind: evReturn})
		case *ast.CallExpr:
			c.collectCall(n)
		}
		return true
	})
}

// collectSelect registers a select statement: with a default clause it
// is non-blocking and its comm statements are exempt; without one the
// whole select is a single blocking event.
func (c *lockCollector) collectSelect(sel *ast.SelectStmt) {
	hasDefault := false
	for _, clause := range sel.Body.List {
		cc := clause.(*ast.CommClause)
		if cc.Comm == nil {
			hasDefault = true
		}
	}
	for _, clause := range sel.Body.List {
		cc := clause.(*ast.CommClause)
		if cc.Comm == nil {
			continue
		}
		if hasDefault {
			c.markCommExempt(cc.Comm)
		}
	}
	if !hasDefault {
		c.add(lockEvent{pos: sel.Pos(), kind: evBlock, desc: "select without default"})
		// The comm statements are part of that one event.
		for _, clause := range sel.Body.List {
			if cc := clause.(*ast.CommClause); cc.Comm != nil {
				c.markCommExempt(cc.Comm)
			}
		}
	}
}

// markCommExempt suppresses the send/recv nodes syntactically embedded
// in a comm-clause header.
func (c *lockCollector) markCommExempt(comm ast.Stmt) {
	c.selectComm[comm] = true
	switch s := comm.(type) {
	case *ast.SendStmt:
		c.selectComm[s] = true
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok {
			c.selectComm[u] = true
		}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			if u, ok := ast.Unparen(r).(*ast.UnaryExpr); ok {
				c.selectComm[u] = true
			}
		}
	}
}

func (c *lockCollector) collectDefer(d *ast.DeferStmt) {
	call := d.Call
	if calleeIs(c.pass.TypesInfo, call, lockRelease...) {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			c.add(lockEvent{pos: d.Pos(), kind: evDeferUnlock, key: exprKey(sel.X)})
		}
		return
	}
	// defer func() { ...; mu.Unlock() }() — the closure's unlocks count
	// as deferred releases for the enclosing function's paths.
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok || !calleeIs(c.pass.TypesInfo, inner, lockRelease...) {
				return true
			}
			if sel, ok := ast.Unparen(inner.Fun).(*ast.SelectorExpr); ok {
				c.add(lockEvent{pos: d.Pos(), kind: evDeferUnlock, key: exprKey(sel.X)})
			}
			return true
		})
	}
}

func (c *lockCollector) collectCall(call *ast.CallExpr) {
	info := c.pass.TypesInfo
	if calleeIs(info, call, lockAcquire...) {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if key := exprKey(sel.X); key != "" {
				c.add(lockEvent{pos: call.Pos(), kind: evLock, key: key})
			}
		}
		return
	}
	if calleeIs(info, call, lockRelease...) {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if key := exprKey(sel.X); key != "" {
				c.add(lockEvent{pos: call.Pos(), kind: evUnlock, key: key})
			}
		}
		return
	}
	if fn := calleeFunc(info, call); fn != nil {
		if desc, ok := blockingCalls[fn.FullName()]; ok {
			c.add(lockEvent{pos: call.Pos(), kind: evBlock, desc: desc})
		}
	}
}
