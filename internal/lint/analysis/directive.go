package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// DirectivePrefix introduces a suppression comment:
//
//	//dsedlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the flagged line or on the line immediately above it. The
// reason is mandatory — a suppression without a recorded justification
// is itself a diagnostic — and "all" suppresses every analyzer.
const DirectivePrefix = "//dsedlint:ignore"

// An IgnoreIndex records, per file and line, which analyzers are
// suppressed there. Drivers build one per package and filter
// diagnostics through it, so suppression behaves identically under the
// standalone runner, `go vet -vettool`, and analysistest.
type IgnoreIndex struct {
	// byLine maps filename → line → analyzer names ("all" wildcards).
	byLine map[string]map[int][]string
	// Malformed collects directives missing their reason or analyzer
	// list; drivers surface these as diagnostics so a bad suppression
	// fails loudly instead of silently not suppressing.
	Malformed []Diagnostic
}

// NewIgnoreIndex scans the files' comments for suppression directives.
func NewIgnoreIndex(fset *token.FileSet, files []*ast.File) *IgnoreIndex {
	ix := &IgnoreIndex{byLine: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ix.addComment(fset, c)
			}
		}
	}
	return ix
}

func (ix *IgnoreIndex) addComment(fset *token.FileSet, c *ast.Comment) {
	if !strings.HasPrefix(c.Text, DirectivePrefix) {
		return
	}
	rest := strings.TrimPrefix(c.Text, DirectivePrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return // some other //dsedlint:ignoreXyz token, not ours
	}
	pos := fset.Position(c.Pos())
	names, reason, ok := parseDirective(rest)
	if !ok {
		ix.Malformed = append(ix.Malformed, Diagnostic{
			Pos:      c.Pos(),
			Analyzer: "dsedlint",
			Message:  "malformed " + DirectivePrefix + " directive: need analyzer name(s) and a reason",
		})
		return
	}
	_ = reason // recorded in the source itself; presence is what we enforce
	lines := ix.byLine[pos.Filename]
	if lines == nil {
		lines = make(map[int][]string)
		ix.byLine[pos.Filename] = lines
	}
	lines[pos.Line] = append(lines[pos.Line], names...)
}

// parseDirective splits " lockhold,ctxflow some reason" into its
// analyzer list and reason, requiring both.
func parseDirective(rest string) (names []string, reason string, ok bool) {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return nil, "", false
	}
	for _, n := range strings.Split(fields[0], ",") {
		if n == "" {
			return nil, "", false
		}
		names = append(names, n)
	}
	return names, strings.Join(fields[1:], " "), true
}

// Suppresses reports whether a diagnostic from the named analyzer at
// pos is covered by a directive on the same line or the line above.
func (ix *IgnoreIndex) Suppresses(fset *token.FileSet, pos token.Pos, analyzer string) bool {
	p := fset.Position(pos)
	lines := ix.byLine[p.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, name := range lines[line] {
			if name == analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}
