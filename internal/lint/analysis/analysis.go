// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass,
// Diagnostic), just large enough to host dsedlint's project-specific
// analyzers. The build image pins the Go toolchain but carries no module
// cache, so the real x/tools module cannot be required; this package
// keeps the same shape so the analyzers port to the upstream framework
// by changing one import path when that constraint lifts.
//
// The drivers live in internal/lint/checker: a standalone loader built
// on `go list -export` and the `go vet -vettool` unitchecker protocol.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one analysis function: its name, the invariant
// it enforces, and its entry point.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, command-line flags,
	// and //dsedlint:ignore directives. It must be a valid Go
	// identifier.
	Name string

	// Doc is the analyzer's documentation: one summary line, a blank
	// line, then the rule and its rationale.
	Doc string

	// Run applies the analyzer to a package, reporting diagnostics
	// through pass.Report. The returned value is unused today (the
	// upstream framework threads it to dependent analyzers) but kept so
	// Run signatures stay upstream-compatible.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer run with a single type-checked package
// and a sink for its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos falls in a _test.go file. Most of
// dsedlint's invariants are about production code paths — tests fake
// clocks, detach contexts and block deliberately — so analyzers consult
// this to scope themselves to non-test files.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return IsTestFilename(p.Fset.Position(pos).Filename)
}

// IsTestFilename reports whether name is a Go test file.
func IsTestFilename(name string) bool {
	const suffix = "_test.go"
	return len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix
}

// A Diagnostic is one finding: a position and a message. Analyzer is
// stamped by the driver, not the analyzer.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Validate rejects analyzer lists that would confuse drivers or
// directives: empty or duplicate names, or missing Run functions.
func Validate(analyzers []*Analyzer) error {
	seen := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		if a.Name == "" {
			return fmt.Errorf("analysis: analyzer with empty name (doc: %.40q)", a.Doc)
		}
		if seen[a.Name] {
			return fmt.Errorf("analysis: duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Run == nil {
			return fmt.Errorf("analysis: analyzer %q has no Run function", a.Name)
		}
	}
	return nil
}
