package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestIsTestFilename(t *testing.T) {
	cases := []struct {
		name string
		want bool
	}{
		{"foo_test.go", true},
		{"dir/foo_test.go", true},
		{"foo.go", false},
		{"test.go", false},
		{"_test.go", true},
		{"", false},
	}
	for _, c := range cases {
		if got := IsTestFilename(c.name); got != c.want {
			t.Errorf("IsTestFilename(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestPassReportfAndInTestFile(t *testing.T) {
	fset := token.NewFileSet()
	src, err := parser.ParseFile(fset, "pkg_test.go", "package p\n\nfunc f() {}\n", 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []Diagnostic
	p := &Pass{
		Analyzer: &Analyzer{Name: "demo"},
		Fset:     fset,
		Files:    []*ast.File{src},
		Report:   func(d Diagnostic) { got = append(got, d) },
	}
	p.Reportf(src.Name.Pos(), "found %s", "it")
	if len(got) != 1 || got[0].Message != "found it" || got[0].Pos != src.Name.Pos() {
		t.Errorf("Reportf produced %+v", got)
	}
	if !p.InTestFile(src.Name.Pos()) {
		t.Error("InTestFile = false for a position inside pkg_test.go")
	}
}

func TestAnalyzerString(t *testing.T) {
	a := &Analyzer{Name: "ctxflow"}
	if a.String() != "ctxflow" {
		t.Errorf("String() = %q", a.String())
	}
}
