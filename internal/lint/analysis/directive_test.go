package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseForDirectives(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, []*ast.File{f}
}

func TestIgnoreIndexSuppresses(t *testing.T) {
	fset, files := parseForDirectives(t, `package p

func a() {
	//dsedlint:ignore lockhold the reason
	_ = 1
}

func b() {
	_ = 2 //dsedlint:ignore ctxflow,jsonenc shared reason
}
`)
	ix := NewIgnoreIndex(fset, files)
	if len(ix.Malformed) != 0 {
		t.Fatalf("unexpected malformed directives: %v", ix.Malformed)
	}
	posOn := func(line int) token.Pos {
		return fset.File(files[0].Pos()).LineStart(line)
	}
	cases := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{5, "lockhold", true},  // line below the directive
		{4, "lockhold", true},  // the directive's own line
		{5, "ctxflow", false},  // different analyzer
		{6, "lockhold", false}, // two lines below: out of range
		{9, "ctxflow", true},   // same-line directive, first name
		{9, "jsonenc", true},   // same-line directive, second name
		{9, "lockhold", false}, // not in the list
		{10, "ctxflow", true},  // a directive covers its line and the next
	}
	for _, c := range cases {
		if got := ix.Suppresses(fset, posOn(c.line), c.analyzer); got != c.want {
			t.Errorf("Suppresses(line %d, %s) = %v, want %v", c.line, c.analyzer, got, c.want)
		}
	}
}

func TestIgnoreIndexWildcard(t *testing.T) {
	fset, files := parseForDirectives(t, `package p

//dsedlint:ignore all generated shim
var x = 1
`)
	ix := NewIgnoreIndex(fset, files)
	pos := fset.File(files[0].Pos()).LineStart(4)
	for _, analyzer := range []string{"ctxflow", "lockhold", "anything"} {
		if !ix.Suppresses(fset, pos, analyzer) {
			t.Errorf("all-directive does not suppress %s", analyzer)
		}
	}
}

func TestIgnoreIndexMalformed(t *testing.T) {
	fset, files := parseForDirectives(t, `package p

//dsedlint:ignore lockhold
var a = 1

//dsedlint:ignore
var b = 2
`)
	ix := NewIgnoreIndex(fset, files)
	if len(ix.Malformed) != 2 {
		t.Fatalf("got %d malformed directives, want 2", len(ix.Malformed))
	}
	for _, d := range ix.Malformed {
		if !strings.Contains(d.Message, "malformed") {
			t.Errorf("malformed diagnostic message = %q", d.Message)
		}
	}
	// A reasonless directive must not suppress anything.
	pos := fset.File(files[0].Pos()).LineStart(4)
	if ix.Suppresses(fset, pos, "lockhold") {
		t.Error("malformed directive suppressed a diagnostic")
	}
}

func TestIgnoreIndexUnrelatedComments(t *testing.T) {
	fset, files := parseForDirectives(t, `package p

// dsedlint:ignore lockhold spaced-out prefix is not a directive
//dsedlint:ignorexyz lockhold some other token
var a = 1
`)
	ix := NewIgnoreIndex(fset, files)
	if len(ix.Malformed) != 0 {
		t.Fatalf("unexpected malformed directives: %v", ix.Malformed)
	}
	pos := fset.File(files[0].Pos()).LineStart(5)
	if ix.Suppresses(fset, pos, "lockhold") {
		t.Error("non-directive comment suppressed a diagnostic")
	}
}

func TestValidate(t *testing.T) {
	run := func(*Pass) (any, error) { return nil, nil }
	if err := Validate([]*Analyzer{{Name: "a", Run: run}, {Name: "b", Run: run}}); err != nil {
		t.Errorf("valid list rejected: %v", err)
	}
	if err := Validate([]*Analyzer{{Name: "a", Run: run}, {Name: "a", Run: run}}); err == nil {
		t.Error("duplicate names accepted")
	}
	if err := Validate([]*Analyzer{{Name: "", Run: run}}); err == nil {
		t.Error("empty name accepted")
	}
	if err := Validate([]*Analyzer{{Name: "a"}}); err == nil {
		t.Error("nil Run accepted")
	}
}
