package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestClockInject(t *testing.T) {
	analysistest.Run(t, lint.ClockInject, "clockinject", "clocknoseam")
}
