package checker

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/lint/analysis"
)

// listedPackage is the subset of `go list -json` output the standalone
// driver needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Module     *struct {
		GoVersion string
	}
	Error *struct {
		Err string
	}
}

// Run loads the packages matching patterns (in dir) with
// `go list -export -deps -json`, type-checks each non-dependency target
// from source against its dependencies' gc export data, and runs the
// analyzers. It needs no network and no module cache beyond what the
// toolchain's build cache provides.
func Run(dir string, analyzers []*analysis.Analyzer, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	imp := newExportImporter(token.NewFileSet(), staticExports(exports))

	var out []Diagnostic
	for _, p := range pkgs {
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("loading %s: %s", p.ImportPath, p.Error.Err)
		}
		diags, err := checkListedPackage(analyzers, p, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, diags...)
	}
	sortDiagnostics(out)
	return out, nil
}

func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// checkListedPackage parses and type-checks one go-list target, then
// runs the analyzers over it.
func checkListedPackage(analyzers []*analysis.Analyzer, p *listedPackage, imp *exportImporter) ([]Diagnostic, error) {
	fset := imp.fset
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		files = append(files, f)
	}
	info := newTypesInfo()
	conf := &types.Config{
		Importer: imp.forPackage(p.ImportMap),
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	if p.Module != nil && p.Module.GoVersion != "" {
		conf.GoVersion = "go" + p.Module.GoVersion
	}
	pkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", p.ImportPath, err)
	}
	return CheckPackage(analyzers, fset, files, pkg, info)
}

// An exportTable locates the gc export data file for a canonical
// package path.
type exportTable interface {
	exportFile(path string) (string, bool)
}

// staticExports is the fixed path→file table `go list -export` or a vet
// config produces.
type staticExports map[string]string

func (m staticExports) exportFile(path string) (string, bool) {
	file, ok := m[path]
	return file, ok
}

// exportImporter resolves imports from gc export data files, the way
// the compiler itself would: an import path is mapped through the
// package's ImportMap (vendoring, test variants), then satisfied from
// the export file recorded for it.
type exportImporter struct {
	fset     *token.FileSet
	exports  exportTable
	compiled types.ImporterFrom
}

func newExportImporter(fset *token.FileSet, exports exportTable) *exportImporter {
	imp := &exportImporter{fset: fset, exports: exports}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := imp.exports.exportFile(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp.compiled = importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	return imp
}

// forPackage returns the types.Importer one package's type-check uses:
// its own ImportMap applied in front of the shared export table.
func (imp *exportImporter) forPackage(importMap map[string]string) types.Importer {
	return importerFunc(func(importPath string) (*types.Package, error) {
		path := importPath
		if mapped, ok := importMap[importPath]; ok {
			path = mapped
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		pkg, err := imp.compiled.ImportFrom(path, "", 0)
		if err != nil {
			return nil, fmt.Errorf("importing %q: %w", path, err)
		}
		return pkg, nil
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
