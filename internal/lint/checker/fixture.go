package checker

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/lint/analysis"
)

// FixtureResult is one analysistest fixture package after checking:
// its syntax (for // want expectation scanning) and the diagnostics
// the analyzers produced.
type FixtureResult struct {
	Fset        *token.FileSet
	Files       []*ast.File
	Diagnostics []Diagnostic
}

// CheckFixtureDir type-checks the fixture package at srcRoot/pkgPath
// and runs the analyzers over it. Imports resolve against sibling
// fixture directories first (type-checked from source, recursively),
// then against the host toolchain's export data — so fixtures may use
// both scratch helper packages and the standard library, with no
// network and no go.mod of their own.
func CheckFixtureDir(analyzers []*analysis.Analyzer, srcRoot, pkgPath string) (*FixtureResult, error) {
	l := &fixtureLoader{
		srcRoot: srcRoot,
		fset:    token.NewFileSet(),
		pkgs:    make(map[string]*fixturePkg),
	}
	l.std = newExportImporter(l.fset, stdExportTable(srcRoot)).forPackage(nil)
	root, err := l.load(pkgPath)
	if err != nil {
		return nil, err
	}
	diags, err := CheckPackage(analyzers, l.fset, root.files, root.pkg, root.info)
	if err != nil {
		return nil, err
	}
	return &FixtureResult{Fset: l.fset, Files: root.files, Diagnostics: diags}, nil
}

type fixturePkg struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

type fixtureLoader struct {
	srcRoot string
	fset    *token.FileSet
	pkgs    map[string]*fixturePkg
	loading []string
	std     types.Importer
}

func (l *fixtureLoader) load(pkgPath string) (*fixturePkg, error) {
	if p, ok := l.pkgs[pkgPath]; ok {
		return p, nil
	}
	for _, active := range l.loading {
		if active == pkgPath {
			return nil, fmt.Errorf("fixture import cycle through %q", pkgPath)
		}
	}
	l.loading = append(l.loading, pkgPath)
	defer func() { l.loading = l.loading[:len(l.loading)-1] }()

	dir := filepath.Join(l.srcRoot, filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("reading fixture %s: %w", pkgPath, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("fixture %s has no Go files", pkgPath)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing fixture %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := newTypesInfo()
	conf := &types.Config{
		Importer: importerFunc(l.importPkg),
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	pkg, err := conf.Check(pkgPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %w", pkgPath, err)
	}
	p := &fixturePkg{files: files, pkg: pkg, info: info}
	l.pkgs[pkgPath] = p
	return p, nil
}

// importPkg resolves one fixture import: a sibling directory under
// srcRoot is a fixture-local package (type-checked from source);
// everything else comes from the toolchain's export data.
func (l *fixtureLoader) importPkg(path string) (*types.Package, error) {
	if fi, err := os.Stat(filepath.Join(l.srcRoot, filepath.FromSlash(path))); err == nil && fi.IsDir() {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return l.std.Import(path)
}

// stdExports caches export-data locations for toolchain packages across
// every fixture load in the process: `go list -export -deps` is rerun
// only for import paths not yet seen.
var stdExports struct {
	sync.Mutex
	files map[string]string // import path → export file
	known map[string]bool   // paths already resolved (even if exportless)
}

// stdExportTable returns a live exportTable over the process-wide
// cache: a lookup miss shells out to `go list -export -deps` (rooted at
// dir — any directory inside the module) and memoizes the whole
// dependency closure.
func stdExportTable(dir string) exportTable {
	return lazyStdExports{dir: dir}
}

type lazyStdExports struct{ dir string }

func (l lazyStdExports) exportFile(path string) (string, bool) {
	stdExports.Lock()
	defer stdExports.Unlock()
	if stdExports.files == nil {
		stdExports.files = make(map[string]string)
		stdExports.known = make(map[string]bool)
	}
	if file, ok := stdExports.files[path]; ok {
		return file, true
	}
	if stdExports.known[path] {
		return "", false
	}
	stdExports.known[path] = true
	pkgs, err := goList(l.dir, []string{path})
	if err != nil {
		return "", false
	}
	for _, p := range pkgs {
		stdExports.known[p.ImportPath] = true
		if p.Export != "" {
			stdExports.files[p.ImportPath] = p.Export
		}
	}
	file, ok := stdExports.files[path]
	return file, ok
}
