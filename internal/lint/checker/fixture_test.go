package checker_test

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/checker"
)

// flagCalls is a trivial analyzer for driving the fixture loader: it
// reports every function declaration whose name starts with "Flagged".
var flagCalls = &analysis.Analyzer{
	Name: "flagcalls",
	Doc:  "reports functions named Flagged*",
	Run: func(pass *analysis.Pass) (any, error) {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fn, ok := d.(*ast.FuncDecl); ok && strings.HasPrefix(fn.Name.Name, "Flagged") {
					pass.Reportf(fn.Name.Pos(), "function %s is flagged", fn.Name.Name)
				}
			}
		}
		return nil, nil
	},
}

// writeFixture lays out a srcRoot tree: map of "pkg/file.go" → source.
func writeFixture(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestCheckFixtureDir proves the loader resolves both sibling fixture
// packages (from source) and standard-library imports (from the
// toolchain's export data) with no go.mod in sight.
func TestCheckFixtureDir(t *testing.T) {
	root := writeFixture(t, map[string]string{
		"helper/helper.go": "package helper\n\nfunc Help() string { return \"help\" }\n",
		"rootpkg/root.go": `package rootpkg

import (
	"strings"

	"helper"
)

func Flagged() string { return strings.ToUpper(helper.Help()) }

func fine() {}
`,
	})
	res, err := checker.CheckFixtureDir([]*analysis.Analyzer{flagCalls}, root, "rootpkg")
	if err != nil {
		t.Fatalf("CheckFixtureDir: %v", err)
	}
	if len(res.Files) != 1 {
		t.Errorf("got %d files, want 1", len(res.Files))
	}
	if len(res.Diagnostics) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(res.Diagnostics), res.Diagnostics)
	}
	d := res.Diagnostics[0]
	if d.Analyzer != "flagcalls" || !strings.Contains(d.Message, "Flagged") {
		t.Errorf("diagnostic = %v", d)
	}
}

func TestCheckFixtureDirErrors(t *testing.T) {
	root := writeFixture(t, map[string]string{
		"empty/README":     "no go files here\n",
		"broken/broken.go": "package broken\n\nvar x undefinedType\n",
		"syntax/syntax.go": "package syntax\n\nfunc {\n",
		"cyclea/a.go":      "package cyclea\n\nimport \"cycleb\"\n\nvar _ = cycleb.B\n",
		"cycleb/b.go":      "package cycleb\n\nimport \"cyclea\"\n\nvar B = cyclea.A\n",
	})
	suite := []*analysis.Analyzer{flagCalls}
	cases := []struct {
		pkg, wantErr string
	}{
		{"does-not-exist", "reading fixture"},
		{"empty", "no Go files"},
		{"broken", "type-checking fixture"},
		{"syntax", "parsing fixture"},
		{"cyclea", "import cycle"},
	}
	for _, c := range cases {
		_, err := checker.CheckFixtureDir(suite, root, c.pkg)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("CheckFixtureDir(%s) error = %v, want substring %q", c.pkg, err, c.wantErr)
		}
	}
}
