package checker

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"

	"repro/internal/lint/analysis"
)

// VetConfig is the JSON configuration cmd/go writes for each vet'd
// compilation unit — the `go vet -vettool` contract. Field names and
// semantics mirror the x/tools unitchecker protocol: cmd/go invokes the
// tool once per package as `dsedlint <flags> $WORK/bNNN/vet.cfg` and
// expects diagnostics on stderr plus a (possibly empty) facts file
// written to VetxOutput.
type VetConfig struct {
	ID                        string // e.g. "repro/internal/api [repro/internal/api.test]"
	Compiler                  string // gc or gccgo
	Dir                       string // package directory
	ImportPath                string
	GoVersion                 string // minimum required Go version, e.g. "go1.22"
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string // import path → canonical package path
	PackageFile               map[string]string // canonical package path → export data file
	Standard                  map[string]bool
	PackageVetx               map[string]string // canonical package path → vet facts file
	VetxOnly                  bool              // run only to produce facts for dependents
	VetxOutput                string            // where to write this unit's facts
	SucceedOnTypecheckFailure bool              // obey, don't report, type errors (std)
}

// RunUnit executes one unit-checker invocation: parse the config cmd/go
// wrote, honor the facts-only short-circuit, type-check the unit
// against the export files the config names, and run the analyzers.
// dsedlint's analyzers exchange no facts, so the vetx output is always
// an empty placeholder — but it must exist, or cmd/go fails the build.
func RunUnit(cfgFile string, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	cfg, err := readVetConfig(cfgFile)
	if err != nil {
		return nil, err
	}
	if err := writeVetx(cfg); err != nil {
		return nil, err
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, fmt.Errorf("parsing %s: %w", name, err)
		}
		files = append(files, f)
	}

	imp := newExportImporter(fset, staticExports(cfg.PackageFile))
	info := newTypesInfo()
	conf := &types.Config{
		Importer:  imp.forPackage(cfg.ImportMap),
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
	}
	if sizes := types.SizesFor(cfg.Compiler, build.Default.GOARCH); sizes != nil {
		conf.Sizes = sizes
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("type-checking %s: %w", cfg.ImportPath, err)
	}
	return CheckPackage(analyzers, fset, files, pkg, info)
}

func readVetConfig(cfgFile string) (*VetConfig, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, fmt.Errorf("reading vet config: %w", err)
	}
	cfg := new(VetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", cfgFile, err)
	}
	if len(cfg.GoFiles) == 0 && !cfg.VetxOnly {
		// A config with no Go files (assembly-only unit) has nothing for
		// us to do, but cmd/go still expects the facts file.
		cfg.VetxOnly = true
	}
	return cfg, nil
}

// writeVetx writes the (empty) facts file cmd/go caches for dependent
// units.
func writeVetx(cfg *VetConfig) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
		return fmt.Errorf("writing vetx output: %w", err)
	}
	return nil
}
