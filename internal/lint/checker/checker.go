// Package checker drives dsedlint's analyzers. It provides the two
// execution modes cmd/dsedlint exposes — a standalone runner built on
// `go list -export` (Run) and the `go vet -vettool` unit-checker
// protocol (RunUnit) — plus the shared per-package machinery:
// typechecking against gc export data, running each analyzer, and
// filtering diagnostics through //dsedlint:ignore directives.
package checker

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
)

// A Diagnostic is one resolved finding: its position, the analyzer that
// produced it, and the message.
type Diagnostic struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Position, d.Message, d.Analyzer)
}

// CheckPackage runs the analyzers over one type-checked package and
// returns the surviving diagnostics: suppressed ones are dropped,
// malformed suppression directives are themselves reported, and the
// result is sorted by position.
func CheckPackage(analyzers []*analysis.Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	if err := analysis.Validate(analyzers); err != nil {
		return nil, err
	}
	ignore := analysis.NewIgnoreIndex(fset, files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			if ignore.Suppresses(fset, d.Pos, a.Name) {
				return
			}
			out = append(out, Diagnostic{
				Position: fset.Position(d.Pos),
				Analyzer: a.Name,
				Message:  d.Message,
			})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path(), err)
		}
	}
	for _, d := range ignore.Malformed {
		out = append(out, Diagnostic{
			Position: fset.Position(d.Pos),
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	sortDiagnostics(out)
	return out, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// newTypesInfo allocates the full set of type-checker result maps the
// analyzers consult.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Instances:    make(map[*ast.Ident]types.Instance),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:       make(map[ast.Node]*types.Scope),
		FileVersions: make(map[*ast.File]string),
	}
}
