package checker_test

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/checker"
)

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test's working directory")
		}
		dir = parent
	}
}

// TestRepoIsClean runs the full dsedlint suite over the whole module:
// the tree must stay free of invariant violations (the same gate CI
// applies via `go vet -vettool`). A failure here names the offending
// line — fix it or add a //dsedlint:ignore directive with a reason.
func TestRepoIsClean(t *testing.T) {
	diags, err := checker.Run(moduleRoot(t), lint.All(), "./...")
	if err != nil {
		t.Fatalf("running dsedlint over the module: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// stdExportFiles asks the toolchain for export data the way cmd/go's
// vet config would supply it.
func stdExportFiles(t *testing.T, root string, paths ...string) map[string]string {
	t.Helper()
	args := append([]string{"list", "-export", "-deps", "-json"}, paths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	raw, err := cmd.Output()
	if err != nil {
		t.Fatalf("go list -export %v: %v", paths, err)
	}
	out := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(raw))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err != nil {
			if err == io.EOF {
				break
			}
			t.Fatalf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			out[p.ImportPath] = p.Export
		}
	}
	return out
}

// TestUnitCheckerProtocol drives RunUnit the way cmd/go does: a JSON
// config naming the unit's files, import map and export data.
func TestUnitCheckerProtocol(t *testing.T) {
	root := moduleRoot(t)
	dir := t.TempDir()
	src := filepath.Join(dir, "probe.go")
	const probe = `package probe

import "context"

func Detach() context.Context {
	return context.Background()
}
`
	if err := os.WriteFile(src, []byte(probe), 0o666); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "probe.vetx")
	cfg := checker.VetConfig{
		ID:          "probe",
		Compiler:    "gc",
		Dir:         dir,
		ImportPath:  "probe",
		GoFiles:     []string{src},
		ImportMap:   map[string]string{"context": "context"},
		PackageFile: stdExportFiles(t, root, "context"),
		VetxOutput:  vetx,
	}
	cfgFile := writeVetConfig(t, dir, cfg)

	diags, err := checker.RunUnit(cfgFile, lint.All())
	if err != nil {
		t.Fatalf("RunUnit: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "ctxflow" || d.Position.Line != 6 {
		t.Errorf("diagnostic = %v, want ctxflow at line 6", d)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("vetx output not written: %v", err)
	}
}

// TestUnitCheckerVetxOnly checks the facts-only short-circuit: cmd/go
// runs dependencies with VetxOnly=true purely to produce the facts
// file, and no diagnostics (or type-checking) should happen.
func TestUnitCheckerVetxOnly(t *testing.T) {
	dir := t.TempDir()
	vetx := filepath.Join(dir, "dep.vetx")
	cfg := checker.VetConfig{
		ID:         "dep",
		Compiler:   "gc",
		ImportPath: "dep",
		GoFiles:    []string{filepath.Join(dir, "does-not-exist.go")},
		VetxOnly:   true,
		VetxOutput: vetx,
	}
	cfgFile := writeVetConfig(t, dir, cfg)

	diags, err := checker.RunUnit(cfgFile, lint.All())
	if err != nil {
		t.Fatalf("RunUnit(VetxOnly): %v", err)
	}
	if len(diags) != 0 {
		t.Errorf("VetxOnly run produced diagnostics: %v", diags)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("vetx output not written: %v", err)
	}
}

// TestUnitCheckerTypecheckFailure checks SucceedOnTypecheckFailure,
// the escape cmd/go uses for packages it knows do not compile.
func TestUnitCheckerTypecheckFailure(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "broken.go")
	if err := os.WriteFile(src, []byte("package broken\n\nvar x undefinedType\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	cfg := checker.VetConfig{
		ID:                        "broken",
		Compiler:                  "gc",
		ImportPath:                "broken",
		GoFiles:                   []string{src},
		SucceedOnTypecheckFailure: true,
	}
	cfgFile := writeVetConfig(t, dir, cfg)
	if diags, err := checker.RunUnit(cfgFile, lint.All()); err != nil || len(diags) != 0 {
		t.Errorf("RunUnit = (%v, %v), want success with no diagnostics", diags, err)
	}

	cfg.SucceedOnTypecheckFailure = false
	cfgFile = writeVetConfig(t, dir, cfg)
	if _, err := checker.RunUnit(cfgFile, lint.All()); err == nil {
		t.Error("RunUnit succeeded on a broken package without SucceedOnTypecheckFailure")
	}
}

func writeVetConfig(t *testing.T, dir string, cfg checker.VetConfig) string {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, cfg.ID+".cfg")
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}
