package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestMemberSeam(t *testing.T) {
	analysistest.Run(t, lint.MemberSeam, "memberseam")
}
