package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// ClockInject keeps clock-injected packages deterministic under test.
// Membership leases, job retention and EWMA shard sizing all take an
// injectable clock precisely so their tests never sleep; one stray
// time.Now() in such a package reintroduces wall-clock flake.
//
// The rule is seam-triggered: a package that declares a clock seam —
// a func() time.Time field or variable whose name contains "clock", or
// a now() method returning time.Time — must route all time reads
// through it. In such packages, raw calls to time.Now, time.Sleep,
// time.Since and time.Until are flagged, except inside the seam
// function itself (a function named now/Now or whose name mentions
// clock, where the wall-clock fallback lives). Assigning the time.Now
// function value as a default (opts.Clock = time.Now) is the wiring
// idiom and stays legal — only calls are flagged. Packages without a
// seam are untouched.
var ClockInject = &analysis.Analyzer{
	Name: "clockinject",
	Doc: "packages with an injectable clock seam must not call " +
		"time.Now/Sleep/Since/Until directly",
	Run: runClockInject,
}

var rawClockCalls = map[string]bool{
	"time.Now":   true,
	"time.Sleep": true,
	"time.Since": true,
	"time.Until": true,
}

func runClockInject(pass *analysis.Pass) (any, error) {
	if !packageHasClockSeam(pass) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFilename(pass.Fset.Position(file.Pos()).Filename) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || isClockSeamFunc(fn.Name.Name) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if f := calleeFunc(pass.TypesInfo, call); f != nil && rawClockCalls[f.FullName()] {
					pass.Reportf(call.Pos(), "raw time.%s() in a clock-injected package: use the package's clock seam so tests stay deterministic", f.Name())
				}
				return true
			})
		}
	}
	return nil, nil
}

// isClockSeamFunc reports whether the function is the seam itself —
// where the wall-clock fallback is allowed to live.
func isClockSeamFunc(name string) bool {
	return name == "now" || name == "Now" || nameContainsFold(name, "clock")
}

// packageHasClockSeam detects an injectable clock in the package's
// non-test files: a clock-named func() time.Time field or package
// variable, or a now() time.Time method.
func packageHasClockSeam(pass *analysis.Pass) bool {
	for _, file := range pass.Files {
		if analysis.IsTestFilename(pass.Fset.Position(file.Pos()).Filename) {
			continue
		}
		seam := false
		ast.Inspect(file, func(n ast.Node) bool {
			if seam {
				return false
			}
			switch n := n.(type) {
			case *ast.Field:
				if fieldIsClockSeam(pass.TypesInfo, n.Names, n.Type) {
					seam = true
				}
			case *ast.ValueSpec:
				if fieldIsClockSeam(pass.TypesInfo, n.Names, n.Type) {
					seam = true
				}
			case *ast.FuncDecl:
				if isNowMethod(pass.TypesInfo, n) {
					seam = true
				}
			}
			return true
		})
		if seam {
			return true
		}
	}
	return false
}

// fieldIsClockSeam matches `Clock func() time.Time`-shaped fields and
// variables.
func fieldIsClockSeam(info *types.Info, names []*ast.Ident, typeExpr ast.Expr) bool {
	if typeExpr == nil {
		return false
	}
	clockNamed := false
	for _, name := range names {
		if nameContainsFold(name.Name, "clock") {
			clockNamed = true
		}
	}
	if !clockNamed {
		return false
	}
	return isNiladicTimeFunc(info.TypeOf(typeExpr))
}

// isNowMethod matches `func (x *T) now() time.Time`-shaped methods.
func isNowMethod(info *types.Info, fn *ast.FuncDecl) bool {
	if fn.Recv == nil || !isClockSeamFunc(fn.Name.Name) {
		return false
	}
	def, ok := info.Defs[fn.Name].(*types.Func)
	if !ok {
		return false
	}
	return isNiladicTimeFunc(def.Type())
}

// isNiladicTimeFunc matches the type func() time.Time.
func isNiladicTimeFunc(t types.Type) bool {
	if t == nil {
		return false
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	return isNamedType(sig.Results().At(0).Type(), "time", "Time")
}
