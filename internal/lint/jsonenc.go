package lint

import (
	"go/ast"

	"repro/internal/lint/analysis"
)

// JSONEnc enforces the PR 3 bug-class fix: a JSON encode that fails
// mid-response must be noticed (at minimum logged), never silently
// dropped — a half-written NDJSON stream with a swallowed error is
// indistinguishable from a healthy one to the client.
//
// The rule: the error result of (*json.Encoder).Encode, json.Marshal
// and json.MarshalIndent must not be discarded — neither by using the
// call as a statement (or go/defer target) nor by assigning the error
// to blank.
var JSONEnc = &analysis.Analyzer{
	Name: "jsonenc",
	Doc: "json Encode/Marshal error results must not be discarded " +
		"(statement position or blank assignment)",
	Run: runJSONEnc,
}

// jsonEncodeCallees maps the guarded callees to the index of their
// error result.
var jsonEncodeCallees = map[string]int{
	"(*encoding/json.Encoder).Encode": 0,
	"encoding/json.Marshal":           1,
	"encoding/json.MarshalIndent":     1,
}

func runJSONEnc(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		if analysis.IsTestFilename(pass.Fset.Position(file.Pos()).Filename) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if name, ok := jsonEncodeCall(pass, n.X); ok {
					pass.Reportf(n.Pos(), "%s error discarded: handle or log the encode failure", name)
				}
			case *ast.GoStmt:
				if name, ok := jsonEncodeCall(pass, n.Call); ok {
					pass.Reportf(n.Pos(), "%s error discarded (go statement): handle or log the encode failure", name)
				}
			case *ast.DeferStmt:
				if name, ok := jsonEncodeCall(pass, n.Call); ok {
					pass.Reportf(n.Pos(), "%s error discarded (deferred): handle or log the encode failure", name)
				}
			case *ast.AssignStmt:
				checkJSONAssign(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// jsonEncodeCall reports whether e is a call to one of the guarded
// encode functions, returning a short display name.
func jsonEncodeCall(pass *analysis.Pass, e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	if _, guarded := jsonEncodeCallees[fn.FullName()]; !guarded {
		return "", false
	}
	return "json." + fn.Name(), true
}

// checkJSONAssign flags `_ = enc.Encode(v)` and `b, _ := json.Marshal(v)`:
// the error result position must not be blank.
func checkJSONAssign(pass *analysis.Pass, assign *ast.AssignStmt) {
	// Only the single-call form can split results across the LHS.
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	errIndex, guarded := jsonEncodeCallees[fn.FullName()]
	if !guarded || errIndex >= len(assign.Lhs) {
		return
	}
	if id, ok := assign.Lhs[errIndex].(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(id.Pos(), "json.%s error assigned to blank: handle or log the encode failure", fn.Name())
	}
}
