package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestJSONEnc(t *testing.T) {
	analysistest.Run(t, lint.JSONEnc, "jsonenc")
}
