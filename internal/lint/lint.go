// Package lint hosts dsedlint's project-specific analyzers: machine
// checks for the concurrency and /v1 API invariants this codebase
// established by hand across PRs 1–5. See doc.go ("Enforced
// invariants") for the rule catalogue and cmd/dsedlint for the driver.
package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// All returns the full dsedlint suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		CtxFlow,
		LockHold,
		HTTPErr,
		JSONEnc,
		ClockInject,
		MemberSeam,
	}
}

// calleeFunc resolves the statically-known function or method a call
// invokes, or nil (builtins, function values, type conversions).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// calleeIs reports whether the call's static callee has one of the
// given types.Func full names (e.g. "context.Background",
// "(*sync.Mutex).Lock").
func calleeIs(info *types.Info, call *ast.CallExpr, fullNames ...string) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	name := fn.FullName()
	for _, want := range fullNames {
		if name == want {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// signatureHasContext reports whether any parameter (or the receiver)
// of sig is a context.Context.
func signatureHasContext(sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// funcType reports the *types.Signature of a FuncDecl or FuncLit node.
func funcSignature(info *types.Info, node ast.Node) *types.Signature {
	switch n := node.(type) {
	case *ast.FuncDecl:
		if fn, ok := info.Defs[n.Name].(*types.Func); ok {
			sig, _ := fn.Type().(*types.Signature)
			return sig
		}
	case *ast.FuncLit:
		sig, _ := info.TypeOf(n.Type).(*types.Signature)
		return sig
	}
	return nil
}

// exprKey renders a selector/ident chain ("c.mu", "s.table.lock") as a
// stable string key; non-chains render as "".
func exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// isChanType reports whether t's core type is a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// nameContainsFold reports whether name contains sub, ignoring case.
func nameContainsFold(name, sub string) bool {
	return strings.Contains(strings.ToLower(name), strings.ToLower(sub))
}
