// Fixture for the ctxflow analyzer: context.Background/TODO are
// reserved for main and tests, and dispatching functions must take a
// context.
package ctxflow

import (
	"context"

	"errgroup"
)

func work() {}

func detach() context.Context {
	return context.Background() // want `context\.Background\(\) outside package main or a test`
}

func todo() context.Context {
	return context.TODO() // want `context\.TODO\(\) outside package main or a test`
}

func threaded(ctx context.Context) context.Context {
	return ctx
}

func spawnNoCtx() { // want `spawnNoCtx dispatches work \(go statement\) but takes no context\.Context`
	go work()
}

func spawnWithCtx(ctx context.Context) {
	go work()
	_ = ctx
}

func spawnViaLit() { // want `spawnViaLit dispatches work \(go statement\)`
	f := func() {
		go work()
	}
	f()
}

func litCarriesCtx() {
	f := func(ctx context.Context) {
		go work()
	}
	f(context.TODO()) // want `context\.TODO\(\) outside package main or a test`
}

func submitNoCtx(g *errgroup.Group) { // want `submitNoCtx dispatches work \(\.Go submission\)`
	g.Go(func() error { return nil })
}

func submitWithCtx(ctx context.Context, g *errgroup.Group) {
	g.Go(func() error { return nil })
	_ = ctx
}

func suppressed() context.Context {
	//dsedlint:ignore ctxflow fixture proving the suppression directive works
	return context.Background()
}
