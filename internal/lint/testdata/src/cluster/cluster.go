// Scratch stand-in for the real cluster package: just enough shape for
// the memberseam fixture to type-check (the analyzer matches the
// Coordinator receiver by name and package, not by import path).
package cluster

// MemberInfo mirrors the real membership advert.
type MemberInfo struct {
	Capacity   int
	Benchmarks []string
}

// Coordinator mirrors the real member-table owner.
type Coordinator struct{}

func (c *Coordinator) Join(t any, info MemberInfo) (bool, error) { return true, nil }
func (c *Coordinator) Heartbeat(name string, info MemberInfo) error {
	return nil
}
func (c *Coordinator) Leave(name string) bool { return false }

// Workers is a read, not a mutation; reads are always allowed.
func (c *Coordinator) Workers() []string { return nil }
