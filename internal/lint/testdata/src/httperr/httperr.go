// Fixture for the httperr analyzer: structured /v1 errors only, and
// request bodies bounded by http.MaxBytesReader.
package httperr

import (
	"encoding/json"
	"io"
	"net/http"
)

func writeJSON(w http.ResponseWriter, v any)                            {}
func writeError(w http.ResponseWriter, r *http.Request, status int)     {}
func decodePost(w http.ResponseWriter, r *http.Request, dst any) error  { return nil }
func legacyShim(w http.ResponseWriter, r *http.Request, ew errorWriter) { ew(w, r, 400, "bad") }
func okHandler(w http.ResponseWriter, r *http.Request)                  { writeError(w, r, 404) }

type errorWriter func(w http.ResponseWriter, r *http.Request, status int, msg string)

func rawError(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "boom", http.StatusInternalServerError) // want `http\.Error writes an unstructured body`
}

func rawNotFound(w http.ResponseWriter, r *http.Request) {
	http.NotFound(w, r) // want `http\.NotFound writes an unstructured body`
}

func adHocEnvelope(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"error": "boom"}) // want `ad-hoc "error" error envelope`
}

func unboundedDecode(w http.ResponseWriter, r *http.Request) {
	var v map[string]any
	dec := json.NewDecoder(r.Body) // want `request body read without http\.MaxBytesReader`
	if err := dec.Decode(&v); err != nil {
		writeError(w, r, http.StatusBadRequest)
	}
}

func unboundedReadAll(w http.ResponseWriter, r *http.Request) {
	b, err := io.ReadAll(r.Body) // want `request body read without http\.MaxBytesReader`
	if err != nil {
		writeError(w, r, http.StatusBadRequest)
	}
	_ = b
}

// --- negative cases: all of these must stay silent ---

func boundedDecode(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	var v map[string]any
	if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
		writeError(w, r, http.StatusBadRequest)
	}
}

func delegatedDecode(w http.ResponseWriter, r *http.Request) {
	var v map[string]any
	if err := decodePost(w, r, &v); err != nil {
		writeError(w, r, http.StatusBadRequest)
	}
}

func structuredEnvelope(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"message": "ok"})
}

func notAHandler(body io.Reader) {
	var v map[string]any
	_ = json.NewDecoder(body).Decode(&v)
}

func suppressedShim(w http.ResponseWriter, r *http.Request) {
	//dsedlint:ignore httperr fixture proving the suppression directive works
	writeJSON(w, map[string]string{"error": "legacy"})
}
