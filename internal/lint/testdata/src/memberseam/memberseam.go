// Fixture for the memberseam analyzer: member-table mutations belong
// inside membership seams only.
package memberseam

import (
	"errors"
	"strings"

	"cluster"
)

type server struct {
	coord *cluster.Coordinator
}

// handleSweep is a request handler, not a membership seam: mutating the
// member table here is a resurrected single-coordinator assumption.
func (s *server) handleSweep(addr string) {
	_, _ = s.coord.Join(nil, cluster.MemberInfo{}) // want `Coordinator\.Join outside a membership seam`
}

func (s *server) retirePeer(name string) {
	s.coord.Leave(name) // want `Coordinator\.Leave outside a membership seam`
}

func (s *server) renew(name string) {
	_ = s.coord.Heartbeat(name, cluster.MemberInfo{}) // want `Coordinator\.Heartbeat outside a membership seam`
}

// --- negative cases: all of these must stay silent ---

// handleRegister is the registration seam.
func (s *server) handleRegister(addr string) {
	_, _ = s.coord.Join(nil, cluster.MemberInfo{})
}

// handleHeartbeat is the renewal seam.
func (s *server) handleHeartbeat(name string) {
	_ = s.coord.Heartbeat(name, cluster.MemberInfo{})
}

// syncGossipMembership is the gossip projection seam.
func (s *server) syncGossipMembership(names []string) {
	for _, n := range names {
		s.coord.Leave(n)
	}
}

// reads are not mutations.
func (s *server) dispatchable() []string {
	return s.coord.Workers()
}

// Join on anything that is not a cluster Coordinator stays legal.
func labels(parts []string, errs []error) (string, error) {
	return strings.Join(parts, ","), errors.Join(errs...)
}

// A suppressed call documents its exemption.
func (s *server) churn(name string) {
	//dsedlint:ignore memberseam fault-injection harness drives membership directly
	s.coord.Leave(name)
}
