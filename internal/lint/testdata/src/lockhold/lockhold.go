// Fixture for the lockhold analyzer: no blocking operation under a
// held sync.Mutex/RWMutex, and every Lock pairs with an Unlock.
package lockhold

import (
	"net/http"
	"sync"
	"time"
)

type table struct {
	mu sync.Mutex
	rw sync.RWMutex
	wg sync.WaitGroup
	ch chan int
}

func (t *table) sendWhileHeld() {
	t.mu.Lock()
	t.ch <- 1 // want `channel send while t\.mu is held`
	t.mu.Unlock()
}

func (t *table) recvWhileDeferHeld() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return <-t.ch // want `channel receive while t\.mu is held`
}

func (t *table) waitWhileHeld() {
	t.mu.Lock()
	t.wg.Wait() // want `WaitGroup\.Wait while t\.mu is held`
	t.mu.Unlock()
}

func (t *table) sleepWhileHeld() {
	t.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while t\.mu is held`
	t.mu.Unlock()
}

func (t *table) netWhileReadHeld(c *http.Client, req *http.Request) {
	t.rw.RLock()
	defer t.rw.RUnlock()
	_, _ = c.Do(req) // want `network call while t\.rw is held`
}

func (t *table) selectNoDefaultWhileHeld() {
	t.mu.Lock()
	select { // want `select without default while t\.mu is held`
	case t.ch <- 1:
	case v := <-t.ch:
		_ = v
	}
	t.mu.Unlock()
}

func (t *table) rangeWhileHeld() int {
	sum := 0
	t.mu.Lock()
	for v := range t.ch { // want `range over channel while t\.mu is held`
		sum += v
	}
	t.mu.Unlock()
	return sum
}

func (t *table) returnWhileHeld(n int) int {
	t.mu.Lock()
	if n > 0 {
		return n // want `return while t\.mu is held`
	}
	t.mu.Unlock()
	return 0
}

func (t *table) writeLockReturnWhileHeld(n int) int {
	t.rw.Lock()
	if n > 0 {
		return n // want `return while t\.rw is held`
	}
	t.rw.Unlock()
	return 0
}

func (t *table) lockNoUnlock() {
	t.mu.Lock() // want `t\.mu\.Lock\(\) with no matching Unlock anywhere in this function`
}

// --- negative cases: all of these must stay silent ---

func (t *table) deferUnlock(n int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n > 0 {
		return n
	}
	return 0
}

func (t *table) unlockBeforeBlocking() {
	t.mu.Lock()
	v := 1
	t.mu.Unlock()
	t.ch <- v
	t.wg.Wait()
}

func (t *table) localChanUnderLock() {
	done := make(chan int, 1)
	t.mu.Lock()
	done <- 1
	t.mu.Unlock()
	<-done
}

func (t *table) selectWithDefaultUnderLock() {
	t.mu.Lock()
	select {
	case t.ch <- 1:
	default:
	}
	t.mu.Unlock()
}

func (t *table) goroutineBodyNotCharged() {
	t.mu.Lock()
	go func() {
		t.ch <- 1 // runs after/independently; its own function's scan
	}()
	t.mu.Unlock()
}

func (t *table) deferredClosureUnlock(n int) int {
	t.mu.Lock()
	defer func() {
		t.mu.Unlock()
	}()
	if n > 0 {
		return n
	}
	return 0
}

func (t *table) suppressedSend() {
	t.mu.Lock()
	//dsedlint:ignore lockhold fixture proving the suppression directive works
	t.ch <- 1
	t.mu.Unlock()
}
