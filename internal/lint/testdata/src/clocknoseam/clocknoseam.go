// Fixture for clockinject's seam gate: this package has no injectable
// clock, so raw time calls are legal and the analyzer stays silent.
package clocknoseam

import "time"

func Deadline() time.Time {
	return time.Now().Add(time.Minute)
}

func Pause() {
	time.Sleep(time.Millisecond)
}
