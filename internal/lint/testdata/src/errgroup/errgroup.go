// Package errgroup is a fixture-local stand-in for
// golang.org/x/sync/errgroup: just enough surface for ctxflow's
// .Go-submission rule.
package errgroup

// A Group runs submitted closures on their own goroutines.
type Group struct{}

// Go submits f to run concurrently.
func (g *Group) Go(f func() error) { go func() { _ = f() }() }

// Wait blocks until every submitted closure returns.
func (g *Group) Wait() error { return nil }
