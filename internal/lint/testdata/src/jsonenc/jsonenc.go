// Fixture for the jsonenc analyzer: json Encode/Marshal errors must
// not be discarded.
package jsonenc

import (
	"encoding/json"
	"io"
)

func discardedEncode(w io.Writer, v any) {
	json.NewEncoder(w).Encode(v) // want `json\.Encode error discarded`
}

func blankEncode(w io.Writer, v any) {
	_ = json.NewEncoder(w).Encode(v) // want `json\.Encode error assigned to blank`
}

func blankMarshal(v any) []byte {
	b, _ := json.Marshal(v) // want `json\.Marshal error assigned to blank`
	return b
}

func blankMarshalIndent(v any) []byte {
	b, _ := json.MarshalIndent(v, "", "  ") // want `json\.MarshalIndent error assigned to blank`
	return b
}

func deferredEncode(w io.Writer, v any) {
	defer json.NewEncoder(w).Encode(v) // want `json\.Encode error discarded \(deferred\)`
}

func goEncode(w io.Writer, v any) {
	go json.NewEncoder(w).Encode(v) // want `json\.Encode error discarded \(go statement\)`
}

// --- negative cases: all of these must stay silent ---

func checkedEncode(w io.Writer, v any) error {
	return json.NewEncoder(w).Encode(v)
}

func handledEncode(w io.Writer, v any) {
	if err := json.NewEncoder(w).Encode(v); err != nil {
		_ = err
	}
}

func checkedMarshal(v any) ([]byte, error) {
	return json.Marshal(v)
}

func suppressedEncode(w io.Writer, v any) {
	//dsedlint:ignore jsonenc fixture proving the suppression directive works
	json.NewEncoder(w).Encode(v)
}
