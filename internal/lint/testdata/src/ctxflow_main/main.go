// Fixture for ctxflow's package-main exemption: Background/TODO are
// legal here, and main/init cannot take a context — but ordinary
// helpers that dispatch work still must.
package main

import "context"

func main() {
	ctx := context.Background()
	go run(ctx)
}

func init() {
	go func() {}()
}

func run(ctx context.Context) {
	_ = ctx
}

func helperSpawns() { // want `helperSpawns dispatches work \(go statement\)`
	go func() {}()
}
