// Fixture for the clockinject analyzer: this package declares a clock
// seam, so raw time calls are banned outside it.
package clockinject

import "time"

type sched struct {
	clock func() time.Time
	last  time.Time
}

// now is the seam: the one place the wall-clock fallback may live.
func (s *sched) now() time.Time {
	if s.clock != nil {
		return s.clock()
	}
	return time.Now()
}

func (s *sched) deadline() time.Time {
	return time.Now().Add(time.Minute) // want `raw time\.Now\(\) in a clock-injected package`
}

func (s *sched) pause() {
	time.Sleep(time.Second) // want `raw time\.Sleep\(\) in a clock-injected package`
}

func (s *sched) age() time.Duration {
	return time.Since(s.last) // want `raw time\.Since\(\) in a clock-injected package`
}

func (s *sched) remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want `raw time\.Until\(\) in a clock-injected package`
}

// --- negative cases: all of these must stay silent ---

func defaults(s *sched) {
	if s.clock == nil {
		s.clock = time.Now // assigning the function value is the wiring idiom
	}
}

func (s *sched) viaSeam() time.Time {
	return s.now()
}

func (s *sched) durationsOnly(d time.Duration) time.Duration {
	return d + time.Millisecond
}

func (s *sched) suppressed() time.Time {
	//dsedlint:ignore clockinject fixture proving the suppression directive works
	return time.Now()
}

// --- the tracer wiring idiom (internal/obs): a constructor defaults a
// nil clock parameter to time.Now by value assignment, stores it, and
// every timestamp flows through the stored field. No raw calls, so the
// whole block must stay silent.

type tracer struct {
	clock func() time.Time
}

func newTracer(clock func() time.Time) *tracer {
	if clock == nil {
		clock = time.Now // value assignment, not a call: the legal default
	}
	return &tracer{clock: clock}
}

func (t *tracer) stamp() int64 {
	return t.clock().UnixNano()
}

func (t *tracer) elapsedMS(start time.Time) float64 {
	return float64(t.clock().Sub(start).Microseconds()) / 1000
}
