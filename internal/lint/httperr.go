package lint

import (
	"go/ast"
	"go/types"
	"strconv"

	"repro/internal/lint/analysis"
)

// HTTPErr enforces the /v1 error contract established in PR 5: every
// error a handler emits goes through the structured error writer
// (api.WriteError and friends), which stamps code, message, retryable
// and request ID into one envelope shape the Go client can round-trip.
//
// Rule 1: http.Error and http.NotFound are banned outside tests — they
// emit bare text/plain bodies no client can parse.
//
// Rule 2: ad-hoc error envelopes — a map composite literal carrying an
// "error" key — are banned; the one legacy /api (v0) shim that must
// keep its historical shape carries a //dsedlint:ignore directive.
//
// Rule 3: a handler (any function taking an http.ResponseWriter and a
// *http.Request) that decodes or reads the request body directly must
// bound it with http.MaxBytesReader first; handlers that delegate to
// api.DecodePost inherit its bound and are not flagged.
var HTTPErr = &analysis.Analyzer{
	Name: "httperr",
	Doc: "handlers must use the structured /v1 error writer (no http.Error, " +
		"no ad-hoc error envelopes) and bound request bodies with http.MaxBytesReader",
	Run: runHTTPErr,
}

func runHTTPErr(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		if analysis.IsTestFilename(pass.Fset.Position(file.Pos()).Filename) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if calleeIs(pass.TypesInfo, n, "net/http.Error") {
					pass.Reportf(n.Pos(), "http.Error writes an unstructured body: use the /v1 error writer (api.WriteError)")
				}
				if calleeIs(pass.TypesInfo, n, "net/http.NotFound") {
					pass.Reportf(n.Pos(), "http.NotFound writes an unstructured body: use the /v1 error writer (api.WriteError)")
				}
			case *ast.CompositeLit:
				if key := errorEnvelopeKey(pass.TypesInfo, n); key != nil {
					pass.Reportf(key.Pos(), "ad-hoc %q error envelope: use the /v1 error writer (api.WriteError)", "error")
				}
			case *ast.FuncDecl:
				if n.Body != nil {
					checkHandlerBody(pass, funcSignature(pass.TypesInfo, n), n.Body)
				}
			case *ast.FuncLit:
				checkHandlerBody(pass, funcSignature(pass.TypesInfo, n), n.Body)
			}
			return true
		})
	}
	return nil, nil
}

// errorEnvelopeKey returns the "error" key expression of a map literal
// that hand-rolls an error envelope, or nil.
func errorEnvelopeKey(info *types.Info, lit *ast.CompositeLit) ast.Expr {
	t := info.TypeOf(lit)
	if t == nil {
		return nil
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return nil
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		basic, ok := kv.Key.(*ast.BasicLit)
		if !ok {
			continue
		}
		if s, err := strconv.Unquote(basic.Value); err == nil && s == "error" {
			return kv.Key
		}
	}
	return nil
}

// checkHandlerBody applies the body-bound rule to one handler-shaped
// function: direct r.Body reads require an http.MaxBytesReader call in
// the same function.
func checkHandlerBody(pass *analysis.Pass, sig *types.Signature, body *ast.BlockStmt) {
	reqParam := handlerRequestParam(sig)
	if reqParam == nil {
		return
	}
	bounded := false
	var reads []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // its own handler check if handler-shaped
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if calleeIs(pass.TypesInfo, call, "net/http.MaxBytesReader") {
			bounded = true
			return true
		}
		for _, arg := range call.Args {
			if isRequestBody(pass.TypesInfo, arg, reqParam) {
				reads = append(reads, arg)
			}
		}
		return true
	})
	if bounded {
		return
	}
	for _, r := range reads {
		pass.Reportf(r.Pos(), "request body read without http.MaxBytesReader: bound it (or decode via api.DecodePost)")
	}
}

// handlerRequestParam returns the *http.Request parameter object of a
// handler-shaped signature (one http.ResponseWriter and one
// *http.Request parameter), or nil.
func handlerRequestParam(sig *types.Signature) *types.Var {
	if sig == nil {
		return nil
	}
	var req *types.Var
	hasWriter := false
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		p := params.At(i)
		switch {
		case isNamedType(p.Type(), "net/http", "ResponseWriter"):
			hasWriter = true
		case isPtrToNamed(p.Type(), "net/http", "Request"):
			req = p
		}
	}
	if !hasWriter {
		return nil
	}
	return req
}

// isRequestBody matches `req.Body` where req is the handler's request
// parameter.
func isRequestBody(info *types.Info, e ast.Expr, reqParam *types.Var) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Body" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	return info.Uses[id] == reqParam
}

func isNamedType(t types.Type, pkgPath, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

func isPtrToNamed(t types.Type, pkgPath, name string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return isNamedType(ptr.Elem(), pkgPath, name)
}
