package lint

import (
	"go/ast"
	"go/types"
	"path"

	"repro/internal/lint/analysis"
)

// MemberSeam guards the leaderless control plane against resurrected
// single-coordinator assumptions. In the registration era, anything
// could call Coordinator.Join/Heartbeat/Leave — the coordinator was the
// one authority on membership. Under gossip there are two views (the
// gossip table and the scheduling member table), and they stay
// consistent only because exactly one seam projects the first onto the
// second. A stray Join in a request handler or a Leave in an error path
// silently forks the views: the scheduler dispatches to peers the
// gossip layer has declared dead, or never learns about ones it
// resurrected.
//
// The rule: calls to Join, Heartbeat or Leave on a cluster Coordinator
// are allowed only inside functions that are membership seams by name —
// the function's name mentions register, heartbeat, gossip, membership
// or seam. The package defining Coordinator polices itself (its
// internals are the mechanism, not a view), and test files are free to
// drive membership directly. Anything else carries a
// //dsedlint:ignore memberseam directive naming why it is exempt.
var MemberSeam = &analysis.Analyzer{
	Name: "memberseam",
	Doc: "Coordinator.Join/Heartbeat/Leave only inside membership seams " +
		"(functions named *register*/*heartbeat*/*gossip*/*membership*/*seam*)",
	Run: runMemberSeam,
}

// memberMutations are the member-table mutation methods the seam guards.
var memberMutations = map[string]bool{
	"Join":      true,
	"Heartbeat": true,
	"Leave":     true,
}

func runMemberSeam(pass *analysis.Pass) (any, error) {
	// The defining package is the mechanism itself, not a consumer view.
	if path.Base(pass.Pkg.Path()) == "cluster" {
		return nil, nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFilename(pass.Fset.Position(file.Pos()).Filename) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || isMembershipSeamFunc(fn.Name.Name) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := coordinatorMutation(pass.TypesInfo, call); ok {
					pass.Reportf(call.Pos(), "Coordinator.%s outside a membership seam: route member-table changes through the gossip/registration seam so the scheduling view cannot fork from the membership view", name)
				}
				return true
			})
		}
	}
	return nil, nil
}

// isMembershipSeamFunc reports whether the function is, by name, part
// of the sanctioned membership machinery.
func isMembershipSeamFunc(name string) bool {
	for _, seam := range []string{"register", "heartbeat", "gossip", "membership", "seam"} {
		if nameContainsFold(name, seam) {
			return true
		}
	}
	return false
}

// coordinatorMutation reports whether the call is Join/Heartbeat/Leave
// on a cluster Coordinator (by receiver type, so strings.Join and
// errors.Join never match).
func coordinatorMutation(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || !memberMutations[fn.Name()] {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Name() != "Coordinator" || obj.Pkg() == nil || path.Base(obj.Pkg().Path()) != "cluster" {
		return "", false
	}
	return fn.Name(), true
}
