package analysistest

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/checker"
)

// nopekg flags every function whose name starts with "Nope" — enough
// analyzer to drive the want-comment machinery end to end.
var nopekg = &analysis.Analyzer{
	Name: "nopekg",
	Doc:  "flags functions named Nope*",
	Run: func(pass *analysis.Pass) (any, error) {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fn, ok := d.(*ast.FuncDecl); ok && strings.HasPrefix(fn.Name.Name, "Nope") {
					pass.Reportf(fn.Name.Pos(), "function %s", fn.Name.Name)
				}
			}
		}
		return nil, nil
	},
}

// TestRunSelf drives Run against the selftest fixture: the positive
// case declares two patterns on one line, the negative case none.
func TestRunSelf(t *testing.T) {
	Run(t, nopekg, "selftest")
}

func TestParsePatterns(t *testing.T) {
	got, err := parsePatterns("\"one\" `two`")
	if err != nil || len(got) != 2 || got[0] != "one" || got[1] != "two" {
		t.Errorf("parsePatterns = (%v, %v)", got, err)
	}
	if _, err := parsePatterns("unquoted"); err == nil {
		t.Error("parsePatterns accepted an unquoted pattern")
	}
	if _, err := parsePatterns(""); err == nil {
		t.Error("parsePatterns accepted an empty want comment")
	}
}

func TestClaim(t *testing.T) {
	w := &want{file: "f.go", line: 3, re: mustRe(t, "boom")}
	wants := []*want{w}
	d := checker.Diagnostic{
		Position: token.Position{Filename: "f.go", Line: 3},
		Message:  "boom goes the analyzer",
	}
	if claim(wants, d) != w || !w.matched {
		t.Error("claim did not match a diagnostic on the want's line")
	}
	// A matched want cannot be claimed twice.
	if claim(wants, d) != nil {
		t.Error("claim reused an already-matched want")
	}
	other := checker.Diagnostic{
		Position: token.Position{Filename: "f.go", Line: 4},
		Message:  "boom",
	}
	if claim(wants, other) != nil {
		t.Error("claim matched a diagnostic on the wrong line")
	}
}

func TestRelPath(t *testing.T) {
	if got := relPath("/nowhere/else/f.go"); got != "/nowhere/else/f.go" {
		t.Errorf("relPath on a foreign absolute path = %q", got)
	}
}

func mustRe(t *testing.T, s string) *regexp.Regexp {
	t.Helper()
	re, err := regexp.Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	return re
}
