// Package analysistest checks dsedlint analyzers against fixture
// packages under testdata/src, in the style of
// golang.org/x/tools/go/analysis/analysistest: every expected
// diagnostic is declared in the fixture itself with a
//
//	// want "regexp"
//
// comment on the line it should land on (multiple quoted or backquoted
// patterns may follow one want). The test fails on any diagnostic
// without a matching expectation and any expectation without a
// matching diagnostic — so each fixture proves both that the analyzer
// fires and that its negative cases stay silent.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/checker"
)

// Run checks one analyzer against the named fixture packages under
// testdata/src (relative to the test's working directory).
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	srcRoot := filepath.Join("testdata", "src")
	for _, pkg := range pkgs {
		res, err := checker.CheckFixtureDir([]*analysis.Analyzer{a}, srcRoot, pkg)
		if err != nil {
			t.Errorf("%s: loading fixture %s: %v", a.Name, pkg, err)
			continue
		}
		wants, errs := collectWants(res)
		for _, e := range errs {
			t.Errorf("%s: %v", pkg, e)
		}
		matchWants(t, a.Name, res, wants)
	}
}

// A want is one expectation: a diagnostic matching re on (file, line).
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// collectWants extracts the expectations from the fixture's comments.
func collectWants(res *checker.FixtureResult) ([]*want, []error) {
	var wants []*want
	var errs []error
	for _, f := range res.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := res.Fset.Position(c.Pos())
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				patterns, err := parsePatterns(strings.TrimPrefix(text, "want "))
				if err != nil {
					errs = append(errs, fmt.Errorf("%s: bad want comment: %v", pos, err))
					continue
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						errs = append(errs, fmt.Errorf("%s: bad want pattern %q: %v", pos, p, err))
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, errs
}

// parsePatterns reads a sequence of Go string literals ("..." or
// `...`).
func parsePatterns(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		quoted, err := strconv.QuotedPrefix(s)
		if err != nil {
			return nil, fmt.Errorf("expected a quoted pattern at %q", s)
		}
		p, err := strconv.Unquote(quoted)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
		s = s[len(quoted):]
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment with no patterns")
	}
	return out, nil
}

// matchWants pairs diagnostics against expectations one-to-one.
func matchWants(t *testing.T, analyzer string, res *checker.FixtureResult, wants []*want) {
	t.Helper()
	for _, d := range res.Diagnostics {
		if w := claim(wants, d); w == nil {
			t.Errorf("%s: unexpected diagnostic: %s", analyzer, d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: %s:%d: no diagnostic matching %q", analyzer, relPath(w.file), w.line, w.re)
		}
	}
}

// claim marks and returns the first unmatched want the diagnostic
// satisfies.
func claim(wants []*want, d checker.Diagnostic) *want {
	for _, w := range wants {
		if w.matched || w.file != d.Position.Filename || w.line != d.Position.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return w
		}
	}
	return nil
}

func relPath(path string) string {
	if rel, err := filepath.Rel(".", path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
