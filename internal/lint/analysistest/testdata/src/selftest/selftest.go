// Package selftest is the fixture for analysistest's own test: the
// nopekg analyzer flags functions named Nope*, so this file carries
// positive cases (one quoted, one backquoted pattern) and a negative
// case.
package selftest

func NopeOnce() {} // want "function NopeOnce"

func NopeTwice() {} // want `function NopeTwice`

func fine() {}

var _ = fine
