package workload

import "fmt"

// Phase parameterises one behavioural regime of a benchmark: its
// instruction mix, locality structure, branch character, and available
// instruction-level parallelism. A benchmark is a schedule over phases.
type Phase struct {
	// Name labels the phase for diagnostics.
	Name string

	// Mix gives the relative frequency of each operation class.
	Mix [NumOpClasses]float64

	// DepMean is the mean register-dependence distance in dynamic
	// instructions; larger values expose more ILP.
	DepMean float64

	// Memory behaviour: each load/store draws from one of three address
	// generators. StreamFrac + ChaseFrac must be ≤ 1; the remainder hits a
	// hot working set of WSBytes.
	WSBytes    int
	StreamFrac float64
	ChaseFrac  float64
	// StreamArrayBytes is the extent of each streamed array (typically
	// larger than L2 so streams always miss at line granularity).
	StreamArrayBytes int
	// StreamStride is the byte stride of streaming accesses.
	StreamStride int
	// ChaseBytes is the extent of the pointer-chased region; chase loads
	// form serial dependence chains.
	ChaseBytes int

	// CodeBlocks is the static code footprint in instructions; the PC
	// stream cycles through it, generating IL1/BTB pressure when the
	// footprint exceeds the instruction cache.
	CodeBlocks int

	// Branch character. HardBranchFrac of conditional branches are
	// data-dependent with per-instance random outcomes (taken with
	// HardTakenProb); the rest are strongly biased and predictable.
	HardBranchFrac float64
	HardTakenProb  float64
	// CallFrac of branches are call/return pairs exercising the RAS.
	CallFrac float64
	// IndirectFrac of branches rotate among several targets, defeating
	// the BTB even when the direction is predictable.
	IndirectFrac float64

	// DeadFrac of instructions are dynamically dead (un-ACE).
	DeadFrac float64
}

// Validate checks phase parameters for consistency.
func (p Phase) Validate() error {
	var mixSum float64
	for _, m := range p.Mix {
		if m < 0 {
			return fmt.Errorf("workload: phase %q has negative mix entry", p.Name)
		}
		mixSum += m
	}
	if mixSum <= 0 {
		return fmt.Errorf("workload: phase %q has empty mix", p.Name)
	}
	if p.DepMean < 1 {
		return fmt.Errorf("workload: phase %q DepMean %v < 1", p.Name, p.DepMean)
	}
	if p.StreamFrac < 0 || p.ChaseFrac < 0 || p.StreamFrac+p.ChaseFrac > 1 {
		return fmt.Errorf("workload: phase %q memory fractions invalid (%v stream + %v chase)", p.Name, p.StreamFrac, p.ChaseFrac)
	}
	if p.WSBytes <= 0 || p.CodeBlocks <= 0 {
		return fmt.Errorf("workload: phase %q needs positive WSBytes and CodeBlocks", p.Name)
	}
	if p.StreamFrac > 0 && (p.StreamStride <= 0 || p.StreamArrayBytes <= 0) {
		return fmt.Errorf("workload: phase %q streams without stride/array size", p.Name)
	}
	if p.ChaseFrac > 0 && p.ChaseBytes <= 0 {
		return fmt.Errorf("workload: phase %q chases without region size", p.Name)
	}
	for _, frac := range []float64{p.HardBranchFrac, p.HardTakenProb, p.CallFrac, p.IndirectFrac, p.DeadFrac} {
		if frac < 0 || frac > 1 {
			return fmt.Errorf("workload: phase %q has fraction outside [0,1]", p.Name)
		}
	}
	return nil
}

// Step is one entry of a benchmark's phase schedule.
type Step struct {
	// Phase indexes Profile.Phases.
	Phase int
	// Weight is the fraction of the schedule period spent in the phase.
	Weight float64
}

// Profile describes one synthetic benchmark.
type Profile struct {
	// Name is the SPEC benchmark the profile imitates.
	Name string
	// Seed determinises the stream; distinct per benchmark.
	Seed uint64
	// Phases are the behavioural regimes.
	Phases []Phase
	// Schedule cycles through phases; it repeats every PeriodInstrs
	// dynamic instructions.
	Schedule []Step
	// PeriodInstrs is the schedule period.
	PeriodInstrs int
}

// Validate checks the profile for consistency.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile without name")
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("workload: profile %q has no phases", p.Name)
	}
	for _, ph := range p.Phases {
		if err := ph.Validate(); err != nil {
			return err
		}
	}
	if len(p.Schedule) == 0 {
		return fmt.Errorf("workload: profile %q has no schedule", p.Name)
	}
	var wsum float64
	for _, s := range p.Schedule {
		if s.Phase < 0 || s.Phase >= len(p.Phases) {
			return fmt.Errorf("workload: profile %q schedule references phase %d of %d", p.Name, s.Phase, len(p.Phases))
		}
		if s.Weight <= 0 {
			return fmt.Errorf("workload: profile %q schedule has non-positive weight", p.Name)
		}
		wsum += s.Weight
	}
	if wsum <= 0 {
		return fmt.Errorf("workload: profile %q schedule has zero total weight", p.Name)
	}
	if p.PeriodInstrs <= 0 {
		return fmt.Errorf("workload: profile %q needs positive period", p.Name)
	}
	return nil
}
