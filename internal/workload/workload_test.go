package workload

import (
	"testing"

	"repro/internal/mathx"
)

func TestAllProfilesValidate(t *testing.T) {
	ps := Profiles()
	if len(ps) != 12 {
		t.Fatalf("got %d profiles, want the paper's 12", len(ps))
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s: %v", p.Name, err)
		}
	}
}

func TestProfileNamesMatchPaper(t *testing.T) {
	want := []string{"bzip2", "crafty", "eon", "gap", "gcc", "mcf",
		"parser", "perlbmk", "swim", "twolf", "vortex", "vpr"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, ok := ProfileByName("mcf")
	if !ok || p.Name != "mcf" {
		t.Errorf("ProfileByName(mcf) = %v,%v", p.Name, ok)
	}
	if _, ok := ProfileByName("nonesuch"); ok {
		t.Error("unknown profile should not resolve")
	}
}

func TestProfileSeedsDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for _, p := range Profiles() {
		if other, dup := seen[p.Seed]; dup {
			t.Errorf("profiles %s and %s share seed %#x", p.Name, other, p.Seed)
		}
		seen[p.Seed] = p.Name
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, _ := ProfileByName("gcc")
	g1 := MustNewGenerator(p)
	g2 := MustNewGenerator(p)
	var i1, i2 Inst
	for i := 0; i < 20000; i++ {
		g1.Next(&i1)
		g2.Next(&i2)
		if i1 != i2 {
			t.Fatalf("streams diverge at instruction %d: %+v vs %+v", i, i1, i2)
		}
	}
}

func TestGeneratorResetRewinds(t *testing.T) {
	p, _ := ProfileByName("vpr")
	g := MustNewGenerator(p)
	first := make([]Inst, 500)
	for i := range first {
		g.Next(&first[i])
	}
	g.Reset()
	var inst Inst
	for i := range first {
		g.Next(&inst)
		if inst != first[i] {
			t.Fatalf("Reset did not rewind: instruction %d differs", i)
		}
	}
}

func TestMixMatchesProfile(t *testing.T) {
	p, _ := ProfileByName("swim")
	g := MustNewGenerator(p)
	st := CollectStats(g, 200000)
	// swim is FP-dominated: FP ops must outnumber branches several-fold.
	fp := st.MixCounts[OpFPALU] + st.MixCounts[OpFPMul]
	br := st.MixCounts[OpBranch]
	if fp < 4*br {
		t.Errorf("swim FP ops %d should dwarf branches %d", fp, br)
	}
	// Integer benchmarks carry essentially no FP.
	p, _ = ProfileByName("gcc")
	st = CollectStats(MustNewGenerator(p), 100000)
	if st.MixCounts[OpFPALU]+st.MixCounts[OpFPMul] != 0 {
		t.Error("gcc profile should not emit FP ops")
	}
}

func TestDependenceDistancesWithinWindow(t *testing.T) {
	for _, name := range []string{"mcf", "swim", "crafty"} {
		p, _ := ProfileByName(name)
		g := MustNewGenerator(p)
		var inst Inst
		for i := 0; i < 50000; i++ {
			g.Next(&inst)
			if inst.Dep1 > maxDepDistance || inst.Dep2 > maxDepDistance {
				t.Fatalf("%s: dependence distance out of range: %+v", name, inst)
			}
		}
	}
}

func TestChaseLoadsFormChains(t *testing.T) {
	p, _ := ProfileByName("mcf")
	g := MustNewGenerator(p)
	var inst Inst
	var lastChase int64 = -1
	chains := 0
	for i := int64(0); i < 100000; i++ {
		g.Next(&inst)
		if inst.Op == OpLoad && inst.Addr >= regionChase {
			if lastChase >= 0 && int64(inst.Dep1) == i-lastChase {
				chains++
			}
			lastChase = i
		}
	}
	if chains < 1000 {
		t.Errorf("mcf chase chain links = %d, want many", chains)
	}
}

func TestCallReturnBalance(t *testing.T) {
	p, _ := ProfileByName("crafty")
	g := MustNewGenerator(p)
	var inst Inst
	depth := 0
	for i := 0; i < 100000; i++ {
		g.Next(&inst)
		if inst.IsCall {
			depth++
		}
		if inst.IsRet {
			depth--
			if depth < 0 {
				t.Fatal("return without matching call")
			}
		}
	}
	if depth > maxCallDepth {
		t.Errorf("call depth %d exceeded cap %d", depth, maxCallDepth)
	}
}

func TestReturnTargetsMatchCallSites(t *testing.T) {
	p, _ := ProfileByName("vortex")
	g := MustNewGenerator(p)
	var inst Inst
	var stack []uint64
	for i := 0; i < 100000; i++ {
		g.Next(&inst)
		if inst.IsCall {
			stack = append(stack, inst.PC+4)
		} else if inst.IsRet {
			if len(stack) == 0 {
				t.Fatal("return with empty model stack")
			}
			want := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if inst.Target != want {
				t.Fatalf("return target %#x, want %#x", inst.Target, want)
			}
		}
	}
}

func TestPhaseRegionsDisjoint(t *testing.T) {
	// Loads/stores of different phases must never alias: phases own
	// disjoint address regions.
	p, _ := ProfileByName("gcc")
	g := MustNewGenerator(p).(*generator)
	seen := map[uint64]int{} // high bits → phase
	var inst Inst
	for i := 0; i < 200000; i++ {
		phase := g.currentPhase()
		g.Next(&inst)
		if inst.Op != OpLoad && inst.Op != OpStore {
			continue
		}
		region := inst.Addr >> 32
		if prev, ok := seen[region]; ok && prev != phase {
			t.Fatalf("address region %#x used by phases %d and %d", region, prev, phase)
		}
		seen[region] = phase
	}
}

func TestScheduleVisitsAllPhases(t *testing.T) {
	for _, p := range Profiles() {
		g := MustNewGenerator(p).(*generator)
		counts := make([]int, len(p.Phases))
		var inst Inst
		for i := 0; i < 2*p.PeriodInstrs; i++ {
			counts[g.currentPhase()]++
			g.Next(&inst)
		}
		for ph, c := range counts {
			if c == 0 {
				t.Errorf("%s: phase %d (%s) never scheduled", p.Name, ph, p.Phases[ph].Name)
			}
		}
	}
}

func TestBranchRatesDifferAcrossBenchmarks(t *testing.T) {
	// swim must be far less branchy than gcc — benchmark diversity check.
	pSwim, _ := ProfileByName("swim")
	pGcc, _ := ProfileByName("gcc")
	sSwim := CollectStats(MustNewGenerator(pSwim), 100000)
	sGcc := CollectStats(MustNewGenerator(pGcc), 100000)
	bSwim := float64(sSwim.MixCounts[OpBranch]) / 100000
	bGcc := float64(sGcc.MixCounts[OpBranch]) / 100000
	if bSwim > 0.08 {
		t.Errorf("swim branch rate = %v, want < 0.08", bSwim)
	}
	if bGcc < 0.12 {
		t.Errorf("gcc branch rate = %v, want > 0.12", bGcc)
	}
}

func TestDeadFractionApproximatesProfile(t *testing.T) {
	p, _ := ProfileByName("gcc")
	st := CollectStats(MustNewGenerator(p), 200000)
	if st.DeadRate < 0.08 || st.DeadRate > 0.25 {
		t.Errorf("gcc dead rate = %v, want within phase-configured band", st.DeadRate)
	}
}

func TestValidationCatchesBrokenProfiles(t *testing.T) {
	good, _ := ProfileByName("eon")

	bad := good
	bad.Schedule = []Step{{Phase: 99, Weight: 1}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range phase index should fail")
	}

	bad = good
	bad.PeriodInstrs = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero period should fail")
	}

	badPhase := good.Phases[0]
	badPhase.StreamFrac = 0.8
	badPhase.ChaseFrac = 0.5
	if err := badPhase.Validate(); err == nil {
		t.Error("memory fractions above 1 should fail")
	}

	badPhase = good.Phases[0]
	badPhase.DepMean = 0
	if err := badPhase.Validate(); err == nil {
		t.Error("DepMean below 1 should fail")
	}

	if _, err := NewGenerator(Profile{}); err == nil {
		t.Error("empty profile must be rejected")
	}
}

func TestOpClassString(t *testing.T) {
	names := map[OpClass]string{
		OpIntALU: "ialu", OpIntMul: "imul", OpFPALU: "fpalu",
		OpFPMul: "fpmul", OpLoad: "load", OpStore: "store", OpBranch: "branch",
	}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("OpClass(%d).String() = %s, want %s", op, op.String(), want)
		}
	}
	if OpClass(200).String() != "?" {
		t.Error("unknown op class should render '?'")
	}
}

func TestWorkingSetAddressesWithinRegion(t *testing.T) {
	p, _ := ProfileByName("twolf")
	g := MustNewGenerator(p)
	var inst Inst
	for i := 0; i < 50000; i++ {
		g.Next(&inst)
		if inst.Op != OpLoad && inst.Op != OpStore {
			continue
		}
		if inst.Addr < regionCode {
			t.Fatalf("data address %#x below data regions", inst.Addr)
		}
	}
}

// Distribution sanity for the generator's own RNG usage: the taken rate of
// each benchmark should sit in a plausible band (not all-taken, not
// never-taken).
func TestTakenRateBands(t *testing.T) {
	for _, p := range Profiles() {
		st := CollectStats(MustNewGenerator(p), 100000)
		if st.TakenRate < 0.2 || st.TakenRate > 0.95 {
			t.Errorf("%s taken rate = %v, want (0.2, 0.95)", p.Name, st.TakenRate)
		}
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	p, _ := ProfileByName("gcc")
	g := MustNewGenerator(p)
	var inst Inst
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next(&inst)
	}
	_ = mathx.Mean // keep import
}
