package workload

import (
	"fmt"

	"repro/internal/mathx"
)

// Address-space layout: each phase owns disjoint regions for code, hot
// working set, streamed arrays and the pointer-chased heap, so phase
// transitions produce the cache-refill transients real phase changes do.
const (
	regionCode    = 0x10_0000_0000
	regionWS      = 0x20_0000_0000
	regionStream  = 0x30_0000_0000
	regionChase   = 0x40_0000_0000
	phaseSpacing  = 1 << 32
	streamSpacing = 1 << 28
)

const numStreams = 4

// maxDepDistance caps register dependence distances; it comfortably exceeds
// the largest ROB in the design space (160).
const maxDepDistance = 255

// maxCallDepth bounds the generator's internal call stack (deep recursion
// beyond the RAS capacity is what corrupts return prediction).
const maxCallDepth = 64

type phaseState struct {
	codeBase   uint64
	wsBase     uint64
	streamBase [numStreams]uint64
	streamPos  [numStreams]uint64
	streamNext int
	chaseBase  uint64
	chasePos   uint64
	branchSlot uint64

	// Loop-body walk over the code footprint: execution sits inside one
	// body for a few iterations, then jumps to another (biased towards a
	// hot subset). This produces the multi-scale code locality real
	// programs have; a flat cyclic sweep would defeat LRU at every cache
	// size.
	bodyLen   uint64
	numBodies uint64
	hotBodies uint64
	bodyStart uint64
	bodyPos   uint64
	itersLeft int
}

type generator struct {
	prof Profile
	rng  *mathx.RNG
	idx  uint64

	// Schedule lookup: stepEnd[i] is the position (within a period) at
	// which schedule step i ends.
	stepEnd []uint64
	curStep int

	phases []phaseState

	callStack [maxCallDepth]uint64
	callDepth int

	lastChaseIdx uint64
	haveChase    bool
}

// NewGenerator builds the deterministic instruction stream for a profile.
func NewGenerator(p Profile) (Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &generator{prof: p}
	var wsum float64
	for _, s := range p.Schedule {
		wsum += s.Weight
	}
	g.stepEnd = make([]uint64, len(p.Schedule))
	var acc float64
	for i, s := range p.Schedule {
		acc += s.Weight
		g.stepEnd[i] = uint64(acc / wsum * float64(p.PeriodInstrs))
	}
	g.stepEnd[len(g.stepEnd)-1] = uint64(p.PeriodInstrs) // absorb rounding
	g.Reset()
	return g, nil
}

// MustNewGenerator is NewGenerator that panics on invalid profiles; for use
// with the vetted built-in profiles.
func MustNewGenerator(p Profile) Generator {
	g, err := NewGenerator(p)
	if err != nil {
		panic(err)
	}
	return g
}

// Name implements Generator.
func (g *generator) Name() string { return g.prof.Name }

// Reset implements Generator.
func (g *generator) Reset() {
	g.rng = mathx.NewRNG(g.prof.Seed)
	g.idx = 0
	g.curStep = 0
	g.callDepth = 0
	g.haveChase = false
	g.phases = make([]phaseState, len(g.prof.Phases))
	for i := range g.phases {
		ps := &g.phases[i]
		pi := uint64(i) * phaseSpacing
		ps.codeBase = regionCode + pi
		ps.wsBase = regionWS + pi
		ps.chaseBase = regionChase + pi
		for s := 0; s < numStreams; s++ {
			ps.streamBase[s] = regionStream + pi + uint64(s)*streamSpacing
		}
		blocks := uint64(g.prof.Phases[i].CodeBlocks)
		ps.bodyLen = blocks / 40
		if ps.bodyLen < 32 {
			ps.bodyLen = 32
		}
		if ps.bodyLen > 256 {
			ps.bodyLen = 256
		}
		if ps.bodyLen > blocks {
			ps.bodyLen = blocks
		}
		ps.numBodies = blocks / ps.bodyLen
		if ps.numBodies == 0 {
			ps.numBodies = 1
		}
		ps.hotBodies = ps.numBodies / 4
		if ps.hotBodies == 0 {
			ps.hotBodies = 1
		}
	}
}

// nextPC advances the loop-body walk and returns the current instruction
// address.
func (g *generator) nextPC(ps *phaseState) uint64 {
	if ps.itersLeft == 0 && ps.bodyPos == 0 { // fresh phase state
		g.chooseBody(ps)
	}
	pc := ps.codeBase + (ps.bodyStart+ps.bodyPos)*4
	ps.bodyPos++
	if ps.bodyPos >= ps.bodyLen {
		ps.bodyPos = 0
		ps.itersLeft--
		if ps.itersLeft <= 0 {
			g.chooseBody(ps)
		}
	}
	return pc
}

// chooseBody jumps to a new loop body with a skewed (hot/warm/cold)
// distribution, approximating the strongly Zipfian code reuse of real
// programs: half the time execution stays in a handful of super-hot inner
// loops, usually it stays within the hot quarter, and occasionally it
// visits cold code (which is what pressures the instruction cache).
func (g *generator) chooseBody(ps *phaseState) {
	super := ps.hotBodies
	if super > 3 {
		super = 3
	}
	var body uint64
	switch u := g.rng.Float64(); {
	case u < 0.65:
		body = uint64(g.rng.Intn(int(super)))
	case u < 0.85:
		body = uint64(g.rng.Intn(int(ps.hotBodies)))
	default:
		body = uint64(g.rng.Intn(int(ps.numBodies)))
	}
	ps.bodyStart = body * ps.bodyLen
	ps.bodyPos = 0
	ps.itersLeft = 2 + g.rng.Intn(6)
}

// currentPhase returns the phase index for the current instruction.
func (g *generator) currentPhase() int {
	pos := g.idx % uint64(g.prof.PeriodInstrs)
	if pos == 0 {
		g.curStep = 0
	}
	for pos >= g.stepEnd[g.curStep] {
		g.curStep++
		if g.curStep >= len(g.stepEnd) {
			g.curStep = 0
			break
		}
	}
	return g.prof.Schedule[g.curStep].Phase
}

// Next implements Generator.
func (g *generator) Next(inst *Inst) {
	pi := g.currentPhase()
	ph := &g.prof.Phases[pi]
	ps := &g.phases[pi]

	*inst = Inst{}
	inst.PC = g.nextPC(ps)
	// The op class is a fixed function of the PC: a static instruction is
	// the same instruction on every dynamic visit, so branch sites, load
	// sites and their predictor state are stable — as in real code.
	inst.Op = opForPC(ph, inst.PC)
	inst.Dead = g.rng.Float64() < ph.DeadFrac

	switch inst.Op {
	case OpLoad, OpStore:
		g.fillMemory(inst, ph, ps)
	case OpBranch:
		g.fillBranch(inst, ph, ps)
	}
	if inst.Dep1 == 0 {
		inst.Dep1 = g.depDistance(ph)
		if g.rng.Float64() < 0.6 {
			inst.Dep2 = g.depDistance(ph)
		}
	}
	g.idx++
}

// opForPC deterministically assigns an op class to a static instruction by
// hashing its PC into the phase's mix distribution.
func opForPC(ph *Phase, pc uint64) OpClass {
	h := pc * 0xD1B54A32D192ED03
	u := float64(h>>11) / (1 << 53)
	var total float64
	for _, m := range ph.Mix {
		total += m
	}
	x := u * total
	for op, m := range ph.Mix {
		x -= m
		if x < 0 {
			return OpClass(op)
		}
	}
	return OpIntALU
}

// depDistance draws a register dependence distance with mean ph.DepMean.
func (g *generator) depDistance(ph *Phase) uint16 {
	p := 1 / ph.DepMean
	d := 1 + g.rng.Geometric(p)
	if d > maxDepDistance {
		d = maxDepDistance
	}
	return uint16(d)
}

func (g *generator) fillMemory(inst *Inst, ph *Phase, ps *phaseState) {
	r := g.rng.Float64()
	switch {
	case r < ph.StreamFrac:
		s := ps.streamNext
		ps.streamNext = (ps.streamNext + 1) % numStreams
		inst.Addr = ps.streamBase[s] + ps.streamPos[s]
		ps.streamPos[s] += uint64(ph.StreamStride)
		if ps.streamPos[s] >= uint64(ph.StreamArrayBytes) {
			ps.streamPos[s] = 0
		}
	case r < ph.StreamFrac+ph.ChaseFrac && inst.Op == OpLoad:
		// Pointer chase: a serial chain of dependent loads walking the
		// region pseudo-randomly.
		ps.chasePos = (ps.chasePos*6364136223846793005 + 1442695040888963407) % uint64(ph.ChaseBytes)
		inst.Addr = ps.chaseBase + (ps.chasePos &^ 7)
		if g.haveChase {
			d := g.idx - g.lastChaseIdx
			if d < 1 {
				d = 1
			}
			if d > maxDepDistance {
				d = maxDepDistance
			}
			inst.Dep1 = uint16(d)
		}
		g.lastChaseIdx = g.idx
		g.haveChase = true
	default:
		inst.Addr = ps.wsBase + (uint64(g.rng.Intn(ph.WSBytes)) &^ 7)
	}
}

// hash01 maps a PC through a salted multiplicative hash onto [0,1),
// giving every static branch site stable characteristics.
func hash01(pc, salt uint64) float64 {
	return float64((pc*salt)>>11) / (1 << 53)
}

func (g *generator) fillBranch(inst *Inst, ph *Phase, ps *phaseState) {
	// The branch *kind* is a fixed property of the site (call site, return
	// site, indirect jump, conditional) — only outcomes of data-dependent
	// branches vary per visit. This keeps BTB/RAS/gshare state meaningful.
	site := hash01(inst.PC, 0xA24BAED4963EE407)
	h := inst.PC * 0x9E3779B97F4A7C15
	fixedTarget := ps.codeBase + (inst.PC*2654435761)%uint64(ph.CodeBlocks)*4

	half := ph.CallFrac / 2
	switch {
	case site < half:
		if g.callDepth < maxCallDepth {
			// Direct call: fixed callee, return address pushed.
			inst.IsCall = true
			inst.Taken = true
			inst.Target = fixedTarget
			g.callStack[g.callDepth] = inst.PC + 4
			g.callDepth++
		} else {
			inst.Taken = true
			inst.Target = fixedTarget
		}
	case site < ph.CallFrac:
		if g.callDepth > 0 {
			inst.IsRet = true
			inst.Taken = true
			g.callDepth--
			inst.Target = g.callStack[g.callDepth]
		} else {
			// Return site reached without a pending call in this walk:
			// behaves as a plain direct jump.
			inst.Taken = true
			inst.Target = fixedTarget
		}
	case site < ph.CallFrac+ph.IndirectFrac:
		// Indirect branch rotating among targets: direction predictable,
		// target not.
		inst.Taken = true
		tgt := (ps.branchSlot * 7919) % uint64(ph.CodeBlocks)
		ps.branchSlot++
		inst.Target = ps.codeBase + tgt*4
	default:
		// Conditional branch: a second hash decides whether the site is
		// "hard" (data-dependent outcome) and, for easy sites, the bias
		// direction.
		isHard := float64(h>>40&0xFFFF)/65536 < ph.HardBranchFrac
		if isHard {
			// Data-dependent outcome, fresh every visit.
			inst.Taken = g.rng.Float64() < ph.HardTakenProb
		} else {
			// Statically biased site: the direction never changes, so
			// its cost is only predictor cold-start and table aliasing —
			// matching how strongly biased real branches behave.
			inst.Taken = h>>32&1 == 1
		}
		// Deterministic per-PC target: a short backward or forward hop.
		off := int64(h>>16&0x3F) - 32
		if off == 0 {
			off = 4
		}
		tgt := int64(inst.PC) + off*4
		if tgt < int64(ps.codeBase) {
			tgt = int64(ps.codeBase)
		}
		inst.Target = uint64(tgt)
	}
}

// Stats summarises a stream prefix for validation and documentation.
type Stats struct {
	Instrs      uint64
	MixCounts   [NumOpClasses]uint64
	TakenRate   float64
	DeadRate    float64
	MeanDep     float64
	DistinctPCs int
}

// CollectStats drains n instructions from a generator and summarises them.
func CollectStats(g Generator, n int) Stats {
	var st Stats
	var inst Inst
	var taken, branches, dead uint64
	var depSum, depCnt uint64
	pcs := make(map[uint64]struct{})
	for i := 0; i < n; i++ {
		g.Next(&inst)
		st.MixCounts[inst.Op]++
		if inst.Op == OpBranch {
			branches++
			if inst.Taken {
				taken++
			}
		}
		if inst.Dead {
			dead++
		}
		if inst.Dep1 > 0 {
			depSum += uint64(inst.Dep1)
			depCnt++
		}
		if len(pcs) < 1<<20 {
			pcs[inst.PC] = struct{}{}
		}
	}
	st.Instrs = uint64(n)
	if branches > 0 {
		st.TakenRate = float64(taken) / float64(branches)
	}
	st.DeadRate = float64(dead) / float64(n)
	if depCnt > 0 {
		st.MeanDep = float64(depSum) / float64(depCnt)
	}
	st.DistinctPCs = len(pcs)
	return st
}

// String renders the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d taken=%.2f dead=%.2f meandep=%.1f pcs=%d",
		s.Instrs, s.TakenRate, s.DeadRate, s.MeanDep, s.DistinctPCs)
}
