// Package workload generates deterministic, phase-structured synthetic
// instruction streams standing in for the SPEC CPU 2000 simulation points
// the paper measures (see DESIGN.md for the substitution rationale).
//
// Each of the twelve profiles emits the *same* dynamic instruction stream
// every time, independent of machine configuration — exactly as a real
// binary would. Microarchitectural behaviour (cache misses, branch
// mispredictions, queue occupancies) then varies across configurations only
// through the machine model, which is the property the paper's predictive
// models learn.
package workload

// OpClass classifies a dynamic instruction for functional-unit and latency
// purposes.
type OpClass uint8

// Operation classes, mirroring the Table 1 functional unit pools.
const (
	OpIntALU OpClass = iota // single-cycle integer ops
	OpIntMul                // integer multiply/divide
	OpFPALU                 // floating point add/compare
	OpFPMul                 // floating point multiply/divide/sqrt
	OpLoad
	OpStore
	OpBranch
	NumOpClasses
)

// String returns the mnemonic class name.
func (o OpClass) String() string {
	switch o {
	case OpIntALU:
		return "ialu"
	case OpIntMul:
		return "imul"
	case OpFPALU:
		return "fpalu"
	case OpFPMul:
		return "fpmul"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpBranch:
		return "branch"
	}
	return "?"
}

// Inst is one dynamic instruction as consumed by the CPU timing model.
type Inst struct {
	Op OpClass
	PC uint64
	// Dep1, Dep2 are register dependence distances: how many dynamic
	// instructions back the producing instruction sits. Zero means no
	// dependence. The CPU model resolves these against its in-flight
	// window.
	Dep1, Dep2 uint16
	// Addr is the effective address for loads and stores.
	Addr uint64
	// Branch semantics (Op == OpBranch).
	Taken  bool
	Target uint64
	IsCall bool
	IsRet  bool
	// Dead marks a dynamically dead instruction: its result is never
	// consumed, so its queue residency is un-ACE for AVF purposes.
	Dead bool
}

// Generator produces a deterministic instruction stream.
type Generator interface {
	// Next fills inst with the next dynamic instruction.
	Next(inst *Inst)
	// Reset rewinds the stream to the beginning.
	Reset()
	// Name identifies the workload.
	Name() string
}
