package workload

// This file defines the twelve synthetic benchmark profiles standing in for
// the paper's SPEC CPU 2000 selection: bzip2, crafty, eon, gap, gcc, mcf,
// parser, perlbmk, twolf, swim, vortex and vpr. Parameter choices follow the
// benchmarks' published characterisations qualitatively: working-set sizes
// straddle the Table 2 cache ranges, pointer-intensive codes chase, FP codes
// stream, and branch-intensive codes carry data-dependent branches. Each
// profile has its own phase schedule so the sampled traces show the
// benchmark-specific time-varying behaviour of Figure 1.

// mix builds an op-class mix; the IntALU share absorbs the remainder.
func mix(imul, fpalu, fpmul, load, store, branch float64) [NumOpClasses]float64 {
	ialu := 1 - imul - fpalu - fpmul - load - store - branch
	if ialu < 0 {
		panic("workload: mix fractions exceed 1")
	}
	var m [NumOpClasses]float64
	m[OpIntALU] = ialu
	m[OpIntMul] = imul
	m[OpFPALU] = fpalu
	m[OpFPMul] = fpmul
	m[OpLoad] = load
	m[OpStore] = store
	m[OpBranch] = branch
	return m
}

// KB and MB scale byte-count literals in profile definitions.
const (
	KB = 1024
	MB = 1024 * 1024
)

// Profiles returns the twelve benchmark profiles in the paper's order.
func Profiles() []Profile {
	return []Profile{
		bzip2(), crafty(), eon(), gap(), gcc(), mcf(),
		parser(), perlbmk(), swim(), twolf(), vortex(), vpr(),
	}
}

// ProfileByName returns the named profile, or ok=false.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Names returns the benchmark names in canonical order.
func Names() []string {
	ps := Profiles()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

func bzip2() Profile {
	return Profile{
		Name: "bzip2",
		Seed: 0xB21,
		Phases: []Phase{
			{ // Run-length encoding / stream compression: sequential.
				Name:             "compress",
				Mix:              mix(0.01, 0, 0, 0.26, 0.12, 0.14),
				DepMean:          6,
				WSBytes:          64 * KB,
				StreamFrac:       0.55,
				StreamArrayBytes: 6 * MB,
				StreamStride:     16,
				CodeBlocks:       3000,
				HardBranchFrac:   0.12,
				HardTakenProb:    0.5,
				CallFrac:         0.04,
				DeadFrac:         0.10,
			},
			{ // Block sort: data-dependent comparisons over a block.
				Name:           "sort",
				Mix:            mix(0.01, 0, 0, 0.30, 0.10, 0.18),
				DepMean:        4,
				WSBytes:        400 * KB,
				CodeBlocks:     2000,
				HardBranchFrac: 0.19,
				HardTakenProb:  0.5,
				CallFrac:       0.06,
				DeadFrac:       0.12,
			},
			{ // Huffman coding: compute-bound, tight tables.
				Name:           "huffman",
				Mix:            mix(0.02, 0, 0, 0.22, 0.08, 0.16),
				DepMean:        5,
				WSBytes:        12 * KB,
				CodeBlocks:     1500,
				HardBranchFrac: 0.075,
				HardTakenProb:  0.4,
				CallFrac:       0.05,
				DeadFrac:       0.10,
			},
		},
		Schedule: []Step{
			{Phase: 0, Weight: 0.35}, {Phase: 1, Weight: 0.40}, {Phase: 2, Weight: 0.25},
		},
		PeriodInstrs: 32768,
	}
}

func crafty() Profile {
	return Profile{
		Name: "crafty",
		Seed: 0xC4A,
		Phases: []Phase{
			{ // Move generation: bit tricks, high ILP, small data.
				Name:           "movegen",
				Mix:            mix(0.02, 0, 0, 0.20, 0.07, 0.19),
				DepMean:        7,
				WSBytes:        24 * KB,
				CodeBlocks:     14000, // 56KB of code: exceeds small IL1s
				HardBranchFrac: 0.11,
				HardTakenProb:  0.45,
				CallFrac:       0.14,
				DeadFrac:       0.14,
			},
			{ // Search/evaluate: deeper recursion, hash probes.
				Name:           "search",
				Mix:            mix(0.02, 0, 0, 0.26, 0.08, 0.21),
				DepMean:        5,
				WSBytes:        300 * KB, // transposition table slice
				CodeBlocks:     10000,
				HardBranchFrac: 0.16,
				HardTakenProb:  0.5,
				CallFrac:       0.18,
				DeadFrac:       0.12,
			},
		},
		Schedule: []Step{
			{Phase: 0, Weight: 0.3}, {Phase: 1, Weight: 0.45}, {Phase: 0, Weight: 0.25},
		},
		PeriodInstrs: 24576,
	}
}

func eon() Profile {
	return Profile{
		Name: "eon",
		Seed: 0xE01,
		Phases: []Phase{
			{ // Ray tracing: FP with regular control, C++ virtual calls.
				Name:           "trace",
				Mix:            mix(0.01, 0.16, 0.07, 0.24, 0.09, 0.12),
				DepMean:        8,
				WSBytes:        20 * KB,
				CodeBlocks:     6000,
				HardBranchFrac: 0.04,
				HardTakenProb:  0.4,
				CallFrac:       0.16,
				IndirectFrac:   0.08,
				DeadFrac:       0.08,
			},
			{ // Shading: heavier FP multiply chains.
				Name:           "shade",
				Mix:            mix(0.01, 0.20, 0.12, 0.22, 0.08, 0.09),
				DepMean:        9,
				WSBytes:        16 * KB,
				CodeBlocks:     4000,
				HardBranchFrac: 0.03,
				HardTakenProb:  0.4,
				CallFrac:       0.12,
				IndirectFrac:   0.06,
				DeadFrac:       0.07,
			},
		},
		Schedule: []Step{
			{Phase: 0, Weight: 0.55}, {Phase: 1, Weight: 0.45},
		},
		PeriodInstrs: 16384,
	}
}

func gap() Profile {
	return Profile{
		Name: "gap",
		Seed: 0x6A9,
		Phases: []Phase{
			{ // Group-theory kernel: list manipulation in a heap slice.
				Name:           "compute",
				Mix:            mix(0.03, 0, 0, 0.27, 0.10, 0.15),
				DepMean:        5,
				WSBytes:        96 * KB,
				ChaseFrac:      0.08,
				ChaseBytes:     512 * KB,
				CodeBlocks:     5000,
				HardBranchFrac: 0.07,
				HardTakenProb:  0.45,
				CallFrac:       0.10,
				DeadFrac:       0.12,
			},
			{ // Periodic garbage-collection sweep: bursty streaming scans
				// (the spiky CPI character of Figure 1's gap trace).
				Name:             "gc",
				Mix:              mix(0.01, 0, 0, 0.38, 0.14, 0.10),
				DepMean:          8,
				WSBytes:          32 * KB,
				StreamFrac:       0.85,
				StreamArrayBytes: 8 * MB,
				StreamStride:     32,
				CodeBlocks:       1200,
				HardBranchFrac:   0.05,
				HardTakenProb:    0.4,
				CallFrac:         0.02,
				DeadFrac:         0.08,
			},
		},
		Schedule: []Step{
			{Phase: 0, Weight: 0.42}, {Phase: 1, Weight: 0.08},
			{Phase: 0, Weight: 0.40}, {Phase: 1, Weight: 0.10},
		},
		PeriodInstrs: 40960,
	}
}

func gcc() Profile {
	return Profile{
		Name: "gcc",
		Seed: 0x6CC,
		Phases: []Phase{
			{ // Parsing: branchy, modest data.
				Name:           "parse",
				Mix:            mix(0.01, 0, 0, 0.24, 0.10, 0.20),
				DepMean:        4,
				WSBytes:        80 * KB,
				CodeBlocks:     20000, // 80KB of code
				HardBranchFrac: 0.13,
				HardTakenProb:  0.5,
				CallFrac:       0.14,
				DeadFrac:       0.16,
			},
			{ // RTL optimisation passes: pointer-heavy IR walks.
				Name:           "optimize",
				Mix:            mix(0.02, 0, 0, 0.30, 0.11, 0.16),
				DepMean:        5,
				WSBytes:        600 * KB,
				ChaseFrac:      0.14,
				ChaseBytes:     1536 * KB,
				CodeBlocks:     16000,
				HardBranchFrac: 0.1,
				HardTakenProb:  0.45,
				CallFrac:       0.10,
				DeadFrac:       0.18,
			},
			{ // Register allocation: dense bitmaps, moderate set.
				Name:           "regalloc",
				Mix:            mix(0.02, 0, 0, 0.27, 0.12, 0.15),
				DepMean:        6,
				WSBytes:        160 * KB,
				CodeBlocks:     9000,
				HardBranchFrac: 0.08,
				HardTakenProb:  0.45,
				CallFrac:       0.08,
				DeadFrac:       0.14,
			},
			{ // Assembly emission: streaming output.
				Name:             "emit",
				Mix:              mix(0.01, 0, 0, 0.24, 0.16, 0.14),
				DepMean:          7,
				WSBytes:          48 * KB,
				StreamFrac:       0.45,
				StreamArrayBytes: 4 * MB,
				StreamStride:     24,
				CodeBlocks:       6000,
				HardBranchFrac:   0.10,
				HardTakenProb:    0.4,
				CallFrac:         0.08,
				DeadFrac:         0.12,
			},
		},
		Schedule: []Step{
			{Phase: 0, Weight: 0.22}, {Phase: 1, Weight: 0.34},
			{Phase: 2, Weight: 0.26}, {Phase: 3, Weight: 0.18},
		},
		PeriodInstrs: 49152,
	}
}

func mcf() Profile {
	return Profile{
		Name: "mcf",
		Seed: 0x3CF,
		Phases: []Phase{
			{ // Network simplex pricing: dominated by dependent pointer
				// chasing across a graph far larger than any L2.
				Name:           "pricing",
				Mix:            mix(0.01, 0, 0, 0.34, 0.08, 0.12),
				DepMean:        3,
				WSBytes:        256 * KB,
				ChaseFrac:      0.55,
				ChaseBytes:     7 * MB,
				CodeBlocks:     2500,
				HardBranchFrac: 0.09,
				HardTakenProb:  0.5,
				CallFrac:       0.04,
				DeadFrac:       0.08,
			},
			{ // Flow update: somewhat denser arithmetic between chases.
				Name:           "update",
				Mix:            mix(0.02, 0, 0, 0.30, 0.11, 0.13),
				DepMean:        4,
				WSBytes:        384 * KB,
				ChaseFrac:      0.30,
				ChaseBytes:     5 * MB,
				CodeBlocks:     2000,
				HardBranchFrac: 0.07,
				HardTakenProb:  0.45,
				CallFrac:       0.04,
				DeadFrac:       0.09,
			},
		},
		Schedule: []Step{
			{Phase: 0, Weight: 0.55}, {Phase: 1, Weight: 0.45},
		},
		PeriodInstrs: 28672,
	}
}

func parser() Profile {
	return Profile{
		Name: "parser",
		Seed: 0x9A5,
		Phases: []Phase{
			{ // Dictionary lookup: hashed probes, hard compares.
				Name:           "lookup",
				Mix:            mix(0.01, 0, 0, 0.28, 0.08, 0.19),
				DepMean:        4,
				WSBytes:        200 * KB,
				ChaseFrac:      0.10,
				ChaseBytes:     768 * KB,
				CodeBlocks:     8000,
				HardBranchFrac: 0.14,
				HardTakenProb:  0.5,
				CallFrac:       0.10,
				DeadFrac:       0.13,
			},
			{ // Linkage evaluation: recursive small-data search.
				Name:           "link",
				Mix:            mix(0.01, 0, 0, 0.24, 0.09, 0.21),
				DepMean:        4,
				WSBytes:        40 * KB,
				CodeBlocks:     6000,
				HardBranchFrac: 0.165,
				HardTakenProb:  0.5,
				CallFrac:       0.20,
				DeadFrac:       0.12,
			},
		},
		Schedule: []Step{
			{Phase: 0, Weight: 0.45}, {Phase: 1, Weight: 0.30},
			{Phase: 0, Weight: 0.25},
		},
		PeriodInstrs: 24576,
	}
}

func perlbmk() Profile {
	return Profile{
		Name: "perlbmk",
		Seed: 0x9E4,
		Phases: []Phase{
			{ // Interpreter dispatch: indirect branches, big code.
				Name:           "interp",
				Mix:            mix(0.01, 0, 0, 0.26, 0.11, 0.19),
				DepMean:        5,
				WSBytes:        112 * KB,
				CodeBlocks:     24000, // 96KB of code
				HardBranchFrac: 0.09,
				HardTakenProb:  0.45,
				CallFrac:       0.18,
				IndirectFrac:   0.12,
				DeadFrac:       0.13,
			},
			{ // Regex matching: tight scanning loops.
				Name:             "regex",
				Mix:              mix(0.01, 0, 0, 0.28, 0.08, 0.22),
				DepMean:          4,
				WSBytes:          28 * KB,
				StreamFrac:       0.25,
				StreamArrayBytes: 2 * MB,
				StreamStride:     8,
				CodeBlocks:       4000,
				HardBranchFrac:   0.24,
				HardTakenProb:    0.55,
				CallFrac:         0.06,
				DeadFrac:         0.11,
			},
		},
		Schedule: []Step{
			{Phase: 0, Weight: 0.55}, {Phase: 1, Weight: 0.20},
			{Phase: 0, Weight: 0.25},
		},
		PeriodInstrs: 32768,
	}
}

func swim() Profile {
	return Profile{
		Name: "swim",
		Seed: 0x591,
		Phases: []Phase{
			{ // Shallow-water stencil 1: wide unit-stride streams.
				Name:             "calc1",
				Mix:              mix(0.01, 0.24, 0.10, 0.27, 0.11, 0.04),
				DepMean:          13,
				WSBytes:          16 * KB,
				StreamFrac:       0.88,
				StreamArrayBytes: 14 * MB,
				StreamStride:     8,
				CodeBlocks:       900,
				HardBranchFrac:   0.02,
				HardTakenProb:    0.3,
				CallFrac:         0.02,
				DeadFrac:         0.05,
			},
			{ // Stencil 2: strided accesses (column order).
				Name:             "calc2",
				Mix:              mix(0.01, 0.26, 0.12, 0.25, 0.10, 0.04),
				DepMean:          12,
				WSBytes:          16 * KB,
				StreamFrac:       0.85,
				StreamArrayBytes: 14 * MB,
				StreamStride:     128,
				CodeBlocks:       1100,
				HardBranchFrac:   0.02,
				HardTakenProb:    0.3,
				CallFrac:         0.02,
				DeadFrac:         0.05,
			},
			{ // Boundary update: short, cache-resident.
				Name:           "boundary",
				Mix:            mix(0.02, 0.18, 0.06, 0.24, 0.12, 0.07),
				DepMean:        9,
				WSBytes:        24 * KB,
				CodeBlocks:     700,
				HardBranchFrac: 0.02,
				HardTakenProb:  0.3,
				CallFrac:       0.03,
				DeadFrac:       0.06,
			},
		},
		Schedule: []Step{
			{Phase: 0, Weight: 0.42}, {Phase: 1, Weight: 0.42}, {Phase: 2, Weight: 0.16},
		},
		PeriodInstrs: 36864,
	}
}

func twolf() Profile {
	return Profile{
		Name: "twolf",
		Seed: 0x720,
		Phases: []Phase{
			{ // Simulated-annealing moves: random structure reads, very
				// data-dependent accept/reject branches.
				Name:           "anneal",
				Mix:            mix(0.03, 0.04, 0.02, 0.27, 0.09, 0.17),
				DepMean:        5,
				WSBytes:        220 * KB,
				CodeBlocks:     7000,
				HardBranchFrac: 0.15,
				HardTakenProb:  0.45,
				CallFrac:       0.08,
				DeadFrac:       0.11,
			},
			{ // Cost evaluation: denser arithmetic on the same structures.
				Name:           "cost",
				Mix:            mix(0.04, 0.06, 0.03, 0.25, 0.07, 0.14),
				DepMean:        6,
				WSBytes:        140 * KB,
				CodeBlocks:     5000,
				HardBranchFrac: 0.1,
				HardTakenProb:  0.45,
				CallFrac:       0.06,
				DeadFrac:       0.10,
			},
		},
		Schedule: []Step{
			{Phase: 0, Weight: 0.6}, {Phase: 1, Weight: 0.4},
		},
		PeriodInstrs: 20480,
	}
}

func vortex() Profile {
	return Profile{
		Name: "vortex",
		Seed: 0x509,
		Phases: []Phase{
			{ // OO database transactions: very large code footprint,
				// mostly predictable control.
				Name:           "txn",
				Mix:            mix(0.01, 0, 0, 0.29, 0.13, 0.16),
				DepMean:        6,
				WSBytes:        320 * KB,
				CodeBlocks:     32000, // 128KB of code: always misses IL1
				HardBranchFrac: 0.04,
				HardTakenProb:  0.4,
				CallFrac:       0.20,
				DeadFrac:       0.12,
			},
			{ // Index traversal.
				Name:           "index",
				Mix:            mix(0.01, 0, 0, 0.31, 0.09, 0.15),
				DepMean:        5,
				WSBytes:        450 * KB,
				ChaseFrac:      0.12,
				ChaseBytes:     1 * MB,
				CodeBlocks:     12000,
				HardBranchFrac: 0.05,
				HardTakenProb:  0.4,
				CallFrac:       0.12,
				DeadFrac:       0.10,
			},
		},
		Schedule: []Step{
			{Phase: 0, Weight: 0.5}, {Phase: 1, Weight: 0.25},
			{Phase: 0, Weight: 0.25},
		},
		PeriodInstrs: 28672,
	}
}

func vpr() Profile {
	return Profile{
		Name: "vpr",
		Seed: 0x59B,
		Phases: []Phase{
			{ // Placement: annealing swaps — compact data, hard branches.
				Name:           "place",
				Mix:            mix(0.02, 0.06, 0.03, 0.25, 0.09, 0.17),
				DepMean:        5,
				WSBytes:        56 * KB,
				CodeBlocks:     6000,
				HardBranchFrac: 0.15,
				HardTakenProb:  0.45,
				CallFrac:       0.07,
				DeadFrac:       0.10,
			},
			{ // Routing: graph wavefront expansion over a big netlist.
				Name:           "route",
				Mix:            mix(0.01, 0.03, 0.01, 0.31, 0.10, 0.15),
				DepMean:        4,
				WSBytes:        240 * KB,
				ChaseFrac:      0.22,
				ChaseBytes:     1280 * KB,
				CodeBlocks:     4500,
				HardBranchFrac: 0.09,
				HardTakenProb:  0.5,
				CallFrac:       0.05,
				DeadFrac:       0.09,
			},
		},
		Schedule: []Step{
			{Phase: 0, Weight: 0.45}, {Phase: 1, Weight: 0.55},
		},
		PeriodInstrs: 32768,
	}
}
