package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func TestBoxplotKnownQuartiles(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	b := NewBoxplot(xs)
	if b.Median != 5 {
		t.Errorf("median = %v, want 5", b.Median)
	}
	if b.Q1 != 3 || b.Q3 != 7 {
		t.Errorf("quartiles = %v/%v, want 3/7", b.Q1, b.Q3)
	}
	if b.Lo != 1 || b.Hi != 9 {
		t.Errorf("whiskers = %v/%v, want 1/9 (no outliers)", b.Lo, b.Hi)
	}
	if len(b.Outliers) != 0 {
		t.Errorf("outliers = %v, want none", b.Outliers)
	}
	if b.Mean != 5 || b.N != 9 {
		t.Errorf("mean/N = %v/%d", b.Mean, b.N)
	}
}

func TestBoxplotDetectsOutliers(t *testing.T) {
	xs := []float64{1, 2, 2, 3, 3, 3, 4, 4, 5, 100}
	b := NewBoxplot(xs)
	if len(b.Outliers) == 0 || b.Outliers[len(b.Outliers)-1] != 100 {
		t.Errorf("expected 100 flagged as outlier, got %v", b.Outliers)
	}
	if b.Hi == 100 {
		t.Error("whisker should not extend to the outlier")
	}
}

func TestBoxplotSingleValue(t *testing.T) {
	b := NewBoxplot([]float64{7})
	if b.Median != 7 || b.Q1 != 7 || b.Q3 != 7 || b.Lo != 7 || b.Hi != 7 {
		t.Errorf("degenerate boxplot wrong: %+v", b)
	}
}

// Property: ordering invariants of the five-number summary, and all
// non-outlier points lie within the whiskers.
func TestBoxplotInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		n := 1 + rng.Intn(60)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Norm(0, 3)
		}
		b := NewBoxplot(xs)
		// Quartile ordering always holds; whiskers are data-snapped so
		// they may cross an *interpolated* quartile, but never invert.
		if !(b.Q1 <= b.Median && b.Median <= b.Q3 && b.Lo <= b.Hi) {
			return false
		}
		out := map[float64]int{}
		for _, o := range b.Outliers {
			out[o]++
		}
		for _, v := range xs {
			if v < b.Lo || v > b.Hi {
				if out[v] == 0 {
					return false
				}
				out[v]--
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestRenderBoxplots(t *testing.T) {
	plots := []Boxplot{NewBoxplot([]float64{1, 2, 3, 4, 5}), NewBoxplot([]float64{2, 4, 6, 8, 10})}
	out := RenderBoxplots([]string{"a", "bb"}, plots, 40)
	if !strings.Contains(out, "M") || !strings.Contains(out, "axis:") {
		t.Errorf("render missing elements:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 3 {
		t.Errorf("expected 3 lines:\n%s", out)
	}
}

func TestThresholdLevels(t *testing.T) {
	trace := []float64{0, 4} // min 0, max 4
	if Threshold(trace, Q1) != 1 || Threshold(trace, Q2) != 2 || Threshold(trace, Q3) != 3 {
		t.Error("threshold levels wrong")
	}
	if Q1.String() != "Q1" || Q3.String() != "Q3" {
		t.Error("level names wrong")
	}
}

func TestDirectionalSymmetry(t *testing.T) {
	actual := []float64{1, 5, 1, 5}
	perfect := []float64{2, 9, 0, 4}
	if ds := DirectionalSymmetry(actual, perfect, 3); ds != 1 {
		t.Errorf("DS = %v, want 1 for direction-preserving prediction", ds)
	}
	inverted := []float64{5, 1, 5, 1}
	if ds := DirectionalSymmetry(actual, inverted, 3); ds != 0 {
		t.Errorf("DS = %v, want 0 for inverted prediction", ds)
	}
	half := []float64{5, 9, 5, 9}
	if ds := DirectionalSymmetry(actual, half, 3); ds != 0.5 {
		t.Errorf("DS = %v, want 0.5", ds)
	}
	if da := DirectionalAsymmetry(actual, half, 3); da != 50 {
		t.Errorf("asymmetry = %v, want 50", da)
	}
}

func TestScenarioExceedances(t *testing.T) {
	trace := []float64{1, 2, 3, 4, 5}
	if n := ScenarioExceedances(trace, 3); n != 3 {
		t.Errorf("exceedances = %d, want 3 (≥ threshold)", n)
	}
}

func TestClusterGroupsSimilarVectors(t *testing.T) {
	labels := []string{"a1", "a2", "b1", "b2"}
	vectors := [][]float64{
		{0, 0}, {0.1, 0}, {5, 5}, {5.1, 5},
	}
	d := Cluster(labels, vectors)
	if d.NumMerges() != 3 {
		t.Fatalf("merges = %d, want 3", d.NumMerges())
	}
	order := d.OrderedLabels()
	// The two tight pairs must be adjacent in leaf order.
	idx := map[string]int{}
	for i, l := range order {
		idx[l] = i
	}
	if abs(idx["a1"]-idx["a2"]) != 1 {
		t.Errorf("a-pair not adjacent in %v", order)
	}
	if abs(idx["b1"]-idx["b2"]) != 1 {
		t.Errorf("b-pair not adjacent in %v", order)
	}
	// First merge must join one of the tight pairs at small distance.
	if d.MergeDistances()[0] > 0.2 {
		t.Errorf("first merge distance %v too large", d.MergeDistances()[0])
	}
}

func TestClusterLeafOrderIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		n := 2 + rng.Intn(8)
		labels := make([]string, n)
		vecs := make([][]float64, n)
		for i := range labels {
			labels[i] = string(rune('a' + i))
			vecs[i] = []float64{rng.Float64(), rng.Float64()}
		}
		d := Cluster(labels, vecs)
		order := d.LeafOrder()
		sorted := append([]int(nil), order...)
		sort.Ints(sorted)
		for i, v := range sorted {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAverageLinkageMonotone(t *testing.T) {
	rng := mathx.NewRNG(3)
	n := 10
	labels := make([]string, n)
	vecs := make([][]float64, n)
	for i := range labels {
		labels[i] = string(rune('a' + i))
		vecs[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	dists := Cluster(labels, vecs).MergeDistances()
	for i := 1; i < len(dists); i++ {
		// UPGMA can have small inversions in pathological cases, but on
		// random metric data distances should be near-monotone; allow
		// slack.
		if dists[i] < dists[i-1]*0.5 {
			t.Errorf("merge distances wildly non-monotone: %v", dists)
		}
	}
}

func TestRenderHeatMap(t *testing.T) {
	out := RenderHeatMap([]string{"x", "y"}, [][]float64{{0, 1}, {1, 0}}, nil)
	if !strings.Contains(out, "scale:") {
		t.Errorf("heat map missing scale:\n%s", out)
	}
	if !strings.Contains(out, "@") || !strings.Contains(out, " ") {
		t.Errorf("heat map should span the shade ramp:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Errorf("sparkline length = %d, want 4", len([]rune(s)))
	}
	if Sparkline(nil) != "" {
		t.Error("empty sparkline should be empty")
	}
	flat := Sparkline([]float64{5, 5, 5})
	if len([]rune(flat)) != 3 {
		t.Error("flat series should still render")
	}
}

func TestRenderSeriesOverlay(t *testing.T) {
	a := []float64{1, 2, 3, 2, 1}
	b := []float64{1, 2, 3, 2, 1}
	out := RenderSeries("t", a, b, 5)
	if !strings.Contains(out, "*") {
		t.Errorf("identical series should produce '*' overlap markers:\n%s", out)
	}
	out = RenderSeries("t", a, nil, 5)
	if strings.Contains(out, "+") {
		t.Errorf("single series should not contain '+':\n%s", out)
	}
}

func TestStarPlot(t *testing.T) {
	sp := NewStarPlot([]string{"Fetch", "ROB"})
	sp.Add("gcc", []float64{1, 0.4})
	sp.Add("mcf", []float64{0, 1})
	out := sp.Render()
	if !strings.Contains(out, "Fetch") || !strings.Contains(out, "gcc") {
		t.Errorf("star plot missing labels:\n%s", out)
	}
	if !strings.Contains(out, "*****") {
		t.Errorf("full spoke should render five ticks:\n%s", out)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

var _ = math.Inf // silence potential unused import if edits change usage
