package stats

import "repro/internal/mathx"

// ThresholdLevel names the paper's three scenario-classification levels
// (Figure 12): Q1, Q2, Q3 between the trace minimum and maximum.
type ThresholdLevel int

// The three levels.
const (
	Q1 ThresholdLevel = iota + 1
	Q2
	Q3
)

// String names the level.
func (l ThresholdLevel) String() string {
	return [...]string{"", "Q1", "Q2", "Q3"}[l]
}

// Threshold computes the level's value for a trace:
// Qk = min + (max−min)·k/4.
func Threshold(trace []float64, level ThresholdLevel) float64 {
	lo, hi := mathx.Min(trace), mathx.Max(trace)
	return lo + (hi-lo)*float64(level)/4
}

// DirectionalSymmetry is the paper's DS metric: the fraction of samples
// where prediction and actual sit on the same side of the threshold. A
// sample exactly on the threshold counts as "above or equal".
func DirectionalSymmetry(actual, predicted []float64, threshold float64) float64 {
	if len(actual) != len(predicted) {
		panic("stats: DS length mismatch")
	}
	if len(actual) == 0 {
		return 0
	}
	correct := 0
	for i := range actual {
		if (actual[i] >= threshold) == (predicted[i] >= threshold) {
			correct++
		}
	}
	return float64(correct) / float64(len(actual))
}

// DirectionalAsymmetry is 1−DS expressed in percent, as plotted in
// Figure 13.
func DirectionalAsymmetry(actual, predicted []float64, threshold float64) float64 {
	return 100 * (1 - DirectionalSymmetry(actual, predicted, threshold))
}

// ScenarioExceedances counts how many samples of a trace are at or above
// the threshold — the "how many sampling points are above the threshold"
// classification used to drive proactive management.
func ScenarioExceedances(trace []float64, threshold float64) int {
	n := 0
	for _, v := range trace {
		if v >= threshold {
			n++
		}
	}
	return n
}
