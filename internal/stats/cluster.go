package stats

import (
	"fmt"
	"math"
	"strings"
)

// Dendrogram is an average-linkage hierarchical clustering over labelled
// observation vectors — the tree drawn above the paper's Figure 18 heat
// plots.
type Dendrogram struct {
	labels []string
	merges []merge
	order  []int // leaf order induced by the merge tree
}

type merge struct {
	a, b     int // node ids: 0..n-1 leaves, n+k internal
	distance float64
}

// Cluster builds the dendrogram from one vector per label using Euclidean
// distance and average linkage (UPGMA). It panics on inconsistent input.
func Cluster(labels []string, vectors [][]float64) *Dendrogram {
	n := len(labels)
	if n == 0 || n != len(vectors) {
		panic("stats: Cluster needs matching labels and vectors")
	}
	d := len(vectors[0])
	for _, v := range vectors {
		if len(v) != d {
			panic("stats: Cluster vectors must share a dimension")
		}
	}

	type cluster struct {
		id      int
		members []int // leaf indices
	}
	active := make([]cluster, n)
	for i := range active {
		active[i] = cluster{id: i, members: []int{i}}
	}
	dist := func(a, b []int) float64 {
		var sum float64
		for _, i := range a {
			for _, j := range b {
				var d2 float64
				for k := range vectors[i] {
					diff := vectors[i][k] - vectors[j][k]
					d2 += diff * diff
				}
				sum += math.Sqrt(d2)
			}
		}
		return sum / float64(len(a)*len(b))
	}

	dg := &Dendrogram{labels: labels}
	children := map[int][2]int{}
	nextID := n
	for len(active) > 1 {
		bi, bj, best := 0, 1, math.Inf(1)
		for i := 0; i < len(active); i++ {
			for j := i + 1; j < len(active); j++ {
				if dd := dist(active[i].members, active[j].members); dd < best {
					bi, bj, best = i, j, dd
				}
			}
		}
		a, b := active[bi], active[bj]
		dg.merges = append(dg.merges, merge{a: a.id, b: b.id, distance: best})
		children[nextID] = [2]int{a.id, b.id}
		merged := cluster{id: nextID, members: append(append([]int{}, a.members...), b.members...)}
		nextID++
		// Remove bj first (it is the larger index).
		active = append(active[:bj], active[bj+1:]...)
		active[bi] = merged
	}

	// Leaf order from a depth-first walk of the final tree.
	var walk func(id int)
	walk = func(id int) {
		if id < n {
			dg.order = append(dg.order, id)
			return
		}
		c := children[id]
		walk(c[0])
		walk(c[1])
	}
	walk(nextID - 1)
	return dg
}

// LeafOrder returns label indices in dendrogram display order.
func (d *Dendrogram) LeafOrder() []int { return append([]int(nil), d.order...) }

// OrderedLabels returns labels in dendrogram display order.
func (d *Dendrogram) OrderedLabels() []string {
	out := make([]string, len(d.order))
	for i, idx := range d.order {
		out[i] = d.labels[idx]
	}
	return out
}

// NumMerges returns the number of internal nodes (len(labels)−1).
func (d *Dendrogram) NumMerges() int { return len(d.merges) }

// MergeDistances returns the linkage distances in merge order
// (non-decreasing for well-formed average-linkage trees on metric data).
func (d *Dendrogram) MergeDistances() []float64 {
	out := make([]float64, len(d.merges))
	for i, m := range d.merges {
		out[i] = m.distance
	}
	return out
}

// String renders the merge sequence.
func (d *Dendrogram) String() string {
	var sb strings.Builder
	name := func(id int) string {
		if id < len(d.labels) {
			return d.labels[id]
		}
		return fmt.Sprintf("#%d", id)
	}
	for i, m := range d.merges {
		fmt.Fprintf(&sb, "merge %d: %s + %s (d=%.4f) -> #%d\n",
			i, name(m.a), name(m.b), m.distance, len(d.labels)+i)
	}
	return sb.String()
}

// shadeRamp maps [0,1] onto ASCII intensity for heat plots.
const shadeRamp = " .:-=+*#%@"

// RenderHeatMap draws a column-labelled heat map of values[row][col],
// normalised over the full matrix, with row indices on the left. colOrder
// permutes columns (pass a dendrogram leaf order to mimic Figure 18).
func RenderHeatMap(colLabels []string, values [][]float64, colOrder []int) string {
	if len(values) == 0 {
		return ""
	}
	if colOrder == nil {
		colOrder = make([]int, len(colLabels))
		for i := range colOrder {
			colOrder[i] = i
		}
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range values {
		for _, v := range row {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	var sb strings.Builder
	// Header: truncated column labels, vertical.
	maxLabel := 0
	ordered := make([]string, len(colOrder))
	for i, c := range colOrder {
		ordered[i] = colLabels[c]
		if len(colLabels[c]) > maxLabel {
			maxLabel = len(colLabels[c])
		}
	}
	for line := 0; line < maxLabel; line++ {
		sb.WriteString("     ")
		for _, l := range ordered {
			if line < len(l) {
				sb.WriteByte(l[line])
			} else {
				sb.WriteByte(' ')
			}
			sb.WriteByte(' ')
		}
		sb.WriteByte('\n')
	}
	for r, row := range values {
		fmt.Fprintf(&sb, "%4d ", r+1)
		for _, c := range colOrder {
			frac := (row[c] - lo) / span
			idx := int(frac * float64(len(shadeRamp)-1))
			sb.WriteByte(shadeRamp[idx])
			sb.WriteByte(' ')
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "scale: %.4f (%q) .. %.4f (%q)\n", lo, shadeRamp[0], hi, shadeRamp[len(shadeRamp)-1])
	return sb.String()
}
