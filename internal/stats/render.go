package stats

import (
	"fmt"
	"strings"

	"repro/internal/mathx"
)

// Sparkline renders a series as a one-line unicode sparkline, normalised to
// its own range.
func Sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	lo, hi := mathx.Min(xs), mathx.Max(xs)
	span := hi - lo
	if span == 0 {
		span = 1
	}
	var sb strings.Builder
	for _, v := range xs {
		idx := int((v - lo) / span * float64(len(ramp)-1))
		sb.WriteRune(ramp[idx])
	}
	return sb.String()
}

// RenderSeries draws a multi-row ASCII chart of one or two series sharing
// an axis (used for the simulation-vs-prediction overlays of Figures 14 and
// 17). The second series, when present, is drawn with '+' over the first's
// '·'; coincident points show '*'.
func RenderSeries(title string, a, b []float64, height int) string {
	if height < 4 {
		height = 8
	}
	n := len(a)
	if n == 0 {
		return ""
	}
	lo, hi := mathx.Min(a), mathx.Max(a)
	if b != nil {
		if m := mathx.Min(b); m < lo {
			lo = m
		}
		if m := mathx.Max(b); m > hi {
			hi = m
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", n))
	}
	plot := func(xs []float64, ch byte) {
		for i, v := range xs {
			r := height - 1 - int((v-lo)/span*float64(height-1))
			if grid[r][i] == ' ' {
				grid[r][i] = ch
			} else if grid[r][i] != ch {
				grid[r][i] = '*'
			}
		}
	}
	plot(a, '.')
	if b != nil {
		plot(b, '+')
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  [%.4g .. %.4g]", title, lo, hi)
	if b != nil {
		sb.WriteString("  ('.'=actual '+'=predicted '*'=both)")
	}
	sb.WriteByte('\n')
	for _, row := range grid {
		sb.WriteString("  |")
		sb.Write(row)
		sb.WriteString("|\n")
	}
	return sb.String()
}

// StarPlot holds per-spoke magnitudes for a set of observations — the
// Figure 11 representation of parameter significance.
type StarPlot struct {
	Spokes []string // parameter names
	Rows   map[string][]float64
	order  []string
}

// NewStarPlot creates an empty star plot with the given spoke names.
func NewStarPlot(spokes []string) *StarPlot {
	return &StarPlot{Spokes: spokes, Rows: map[string][]float64{}}
}

// Add appends one observation (values per spoke, expected in [0,1]).
func (s *StarPlot) Add(label string, values []float64) {
	if len(values) != len(s.Spokes) {
		panic("stats: star plot spoke count mismatch")
	}
	if _, dup := s.Rows[label]; !dup {
		s.order = append(s.order, label)
	}
	s.Rows[label] = values
}

// Render prints each observation as a row of spoke bars (0–5 ticks).
func (s *StarPlot) Render() string {
	var sb strings.Builder
	labelW := 0
	for _, l := range s.order {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	fmt.Fprintf(&sb, "%-*s", labelW+1, "")
	for _, sp := range s.Spokes {
		fmt.Fprintf(&sb, " %8s", sp)
	}
	sb.WriteByte('\n')
	for _, label := range s.order {
		fmt.Fprintf(&sb, "%-*s", labelW+1, label)
		for _, v := range s.Rows[label] {
			ticks := int(mathx.Clamp(v, 0, 1)*5 + 0.5)
			fmt.Fprintf(&sb, " %8s", strings.Repeat("*", ticks))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
