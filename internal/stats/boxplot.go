// Package stats provides the statistical summaries and plot-data
// structures the paper's evaluation uses: boxplots (Figure 8), the
// directional-symmetry scenario-classification metric (Figures 12–13),
// hierarchical clustering for heat-plot dendrograms (Figure 18), and text
// renderers that print these artifacts in a terminal.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Boxplot is the five-number summary with outliers, using the paper's
// whisker rule: whiskers extend to the extreme values or 1.5×IQR from the
// median, whichever is less.
type Boxplot struct {
	Median   float64
	Q1, Q3   float64
	Lo, Hi   float64 // whisker ends
	Outliers []float64
	Mean     float64
	N        int
}

// NewBoxplot summarises xs. It panics on empty input.
func NewBoxplot(xs []float64) Boxplot {
	if len(xs) == 0 {
		panic("stats: boxplot of empty data")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)

	b := Boxplot{N: len(xs)}
	b.Median = quantileSorted(sorted, 0.5)
	b.Q1 = quantileSorted(sorted, 0.25)
	b.Q3 = quantileSorted(sorted, 0.75)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	b.Mean = sum / float64(len(sorted))

	iqr := b.Q3 - b.Q1
	loLimit := b.Median - 1.5*iqr
	hiLimit := b.Median + 1.5*iqr
	b.Lo, b.Hi = sorted[0], sorted[len(sorted)-1]
	if b.Lo < loLimit {
		b.Lo = loLimit
	}
	if b.Hi > hiLimit {
		b.Hi = hiLimit
	}
	// Snap whiskers to the most extreme datum inside the limits.
	for _, v := range sorted {
		if v >= b.Lo {
			b.Lo = v
			break
		}
	}
	for i := len(sorted) - 1; i >= 0; i-- {
		if sorted[i] <= b.Hi {
			b.Hi = sorted[i]
			break
		}
	}
	for _, v := range sorted {
		if v < b.Lo || v > b.Hi {
			b.Outliers = append(b.Outliers, v)
		}
	}
	return b
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders a one-line textual summary.
func (b Boxplot) String() string {
	return fmt.Sprintf("med=%.3f q1=%.3f q3=%.3f whiskers=[%.3f,%.3f] outliers=%d mean=%.3f",
		b.Median, b.Q1, b.Q3, b.Lo, b.Hi, len(b.Outliers), b.Mean)
}

// RenderRow draws the boxplot as a fixed-width ASCII strip covering
// [axisLo, axisHi].
func (b Boxplot) RenderRow(axisLo, axisHi float64, width int) string {
	if width < 10 {
		width = 10
	}
	cells := make([]rune, width)
	for i := range cells {
		cells[i] = ' '
	}
	pos := func(v float64) int {
		if axisHi <= axisLo {
			return 0
		}
		p := int(float64(width-1) * (v - axisLo) / (axisHi - axisLo))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	lo, q1, med, q3, hi := pos(b.Lo), pos(b.Q1), pos(b.Median), pos(b.Q3), pos(b.Hi)
	for i := lo; i <= hi; i++ {
		cells[i] = '-'
	}
	for i := q1; i <= q3; i++ {
		cells[i] = '='
	}
	cells[lo] = '|'
	cells[hi] = '|'
	cells[med] = 'M'
	for _, o := range b.Outliers {
		cells[pos(o)] = 'o'
	}
	return string(cells)
}

// RenderBoxplots prints labelled boxplot rows on a shared axis.
func RenderBoxplots(labels []string, plots []Boxplot, width int) string {
	if len(labels) != len(plots) {
		panic("stats: labels/plots length mismatch")
	}
	if len(plots) == 0 {
		return ""
	}
	axisLo, axisHi := plots[0].Lo, plots[0].Hi
	for _, p := range plots {
		lo, hi := p.Lo, p.Hi
		for _, o := range p.Outliers {
			if o < lo {
				lo = o
			}
			if o > hi {
				hi = o
			}
		}
		if lo < axisLo {
			axisLo = lo
		}
		if hi > axisHi {
			axisHi = hi
		}
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var sb strings.Builder
	for i, p := range plots {
		fmt.Fprintf(&sb, "%-*s %s med=%6.2f\n", labelW, labels[i], p.RenderRow(axisLo, axisHi, width), p.Median)
	}
	fmt.Fprintf(&sb, "%-*s axis: [%.3f, %.3f]\n", labelW, "", axisLo, axisHi)
	return sb.String()
}
