// Package bpred implements the baseline machine's front-end predictors
// (Table 1): a gshare direction predictor with 2-bit saturating counters, a
// set-associative branch target buffer, and a return address stack.
package bpred

// Gshare is a global-history direction predictor: the prediction table is
// indexed by PC XOR global history, each entry a 2-bit saturating counter.
type Gshare struct {
	table    []uint8
	histMask uint64
	history  uint64
	idxMask  uint64
}

// NewGshare builds a predictor with the given table entries (power of two)
// and global history bits.
func NewGshare(entries, historyBits int) *Gshare {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("bpred: gshare entries must be a positive power of two")
	}
	if historyBits < 0 || historyBits > 63 {
		panic("bpred: invalid history bits")
	}
	table := make([]uint8, entries)
	for i := range table {
		table[i] = 1 // weakly not-taken
	}
	return &Gshare{
		table:    table,
		histMask: (1 << uint(historyBits)) - 1,
		idxMask:  uint64(entries - 1),
	}
}

func (g *Gshare) index(pc uint64) uint64 {
	return ((pc >> 2) ^ g.history) & g.idxMask
}

// Predict returns the predicted direction for the branch at pc without
// changing predictor state.
func (g *Gshare) Predict(pc uint64) bool {
	return g.table[g.index(pc)] >= 2
}

// Update trains the predictor with the resolved direction and shifts the
// global history. It must be called exactly once per dynamic branch, after
// Predict.
func (g *Gshare) Update(pc uint64, taken bool) {
	idx := g.index(pc)
	c := g.table[idx]
	if taken {
		if c < 3 {
			g.table[idx] = c + 1
		}
	} else {
		if c > 0 {
			g.table[idx] = c - 1
		}
	}
	g.history = ((g.history << 1) | b2u(taken)) & g.histMask
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// BTB is a set-associative branch target buffer with LRU replacement.
type BTB struct {
	sets    int
	assoc   int
	tags    []uint64 // sets*assoc; 0 = invalid (tag stores pc|1)
	targets []uint64
	setMask uint64
}

// NewBTB builds a BTB with the given total entries (power of two) and
// associativity.
func NewBTB(entries, assoc int) *BTB {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("bpred: BTB entries must be a positive power of two")
	}
	if assoc <= 0 || entries%assoc != 0 {
		panic("bpred: BTB associativity must divide entries")
	}
	sets := entries / assoc
	return &BTB{
		sets:    sets,
		assoc:   assoc,
		tags:    make([]uint64, entries),
		targets: make([]uint64, entries),
		setMask: uint64(sets - 1),
	}
}

// Lookup returns the predicted target for the branch at pc, if present.
func (b *BTB) Lookup(pc uint64) (target uint64, ok bool) {
	set := int((pc >> 2) & b.setMask)
	base := set * b.assoc
	key := pc | 1
	for w := 0; w < b.assoc; w++ {
		if b.tags[base+w] == key {
			// Move to front (LRU position 0 is MRU).
			tgt := b.targets[base+w]
			for i := w; i > 0; i-- {
				b.tags[base+i] = b.tags[base+i-1]
				b.targets[base+i] = b.targets[base+i-1]
			}
			b.tags[base] = key
			b.targets[base] = tgt
			return tgt, true
		}
	}
	return 0, false
}

// Insert records the taken target of the branch at pc, evicting the LRU way.
func (b *BTB) Insert(pc, target uint64) {
	set := int((pc >> 2) & b.setMask)
	base := set * b.assoc
	key := pc | 1
	// Hit: refresh target and recency.
	for w := 0; w < b.assoc; w++ {
		if b.tags[base+w] == key {
			for i := w; i > 0; i-- {
				b.tags[base+i] = b.tags[base+i-1]
				b.targets[base+i] = b.targets[base+i-1]
			}
			b.tags[base] = key
			b.targets[base] = target
			return
		}
	}
	// Miss: shift everything down, install at MRU.
	for i := b.assoc - 1; i > 0; i-- {
		b.tags[base+i] = b.tags[base+i-1]
		b.targets[base+i] = b.targets[base+i-1]
	}
	b.tags[base] = key
	b.targets[base] = target
}

// RAS is a circular return address stack. Pushing beyond capacity silently
// overwrites the oldest entry (matching hardware behaviour), which corrupts
// deep call chains — exactly the effect a finite RAS has on recursion.
type RAS struct {
	stack []uint64
	top   int // index of next free slot
	depth int // current valid depth, capped at capacity
}

// NewRAS builds a return address stack with the given capacity.
func NewRAS(capacity int) *RAS {
	if capacity <= 0 {
		panic("bpred: RAS capacity must be positive")
	}
	return &RAS{stack: make([]uint64, capacity)}
}

// Push records a return address at a call.
func (r *RAS) Push(addr uint64) {
	r.stack[r.top] = addr
	r.top = (r.top + 1) % len(r.stack)
	if r.depth < len(r.stack) {
		r.depth++
	}
}

// Pop predicts the target of a return. ok is false when the stack is empty.
func (r *RAS) Pop() (addr uint64, ok bool) {
	if r.depth == 0 {
		return 0, false
	}
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	r.depth--
	return r.stack[r.top], true
}

// Depth returns the number of valid entries.
func (r *RAS) Depth() int { return r.depth }
