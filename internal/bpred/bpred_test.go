package bpred

import (
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func TestGshareLearnsBias(t *testing.T) {
	g := NewGshare(1024, 8)
	pc := uint64(0x400100)
	// Train always-taken.
	for i := 0; i < 50; i++ {
		g.Update(pc, true)
	}
	if !g.Predict(pc) {
		t.Error("gshare should predict taken after training")
	}
}

func TestGshareLearnsAlternatingViaHistory(t *testing.T) {
	g := NewGshare(4096, 10)
	pc := uint64(0x400200)
	// Alternating pattern is perfectly predictable with global history.
	taken := false
	// Warm up.
	for i := 0; i < 2000; i++ {
		g.Update(pc, taken)
		taken = !taken
	}
	correct := 0
	for i := 0; i < 200; i++ {
		if g.Predict(pc) == taken {
			correct++
		}
		g.Update(pc, taken)
		taken = !taken
	}
	if correct < 195 {
		t.Errorf("gshare predicted %d/200 of an alternating pattern; want ≥195", correct)
	}
}

func TestGshareRandomBranchNearChance(t *testing.T) {
	g := NewGshare(2048, 10)
	rng := mathx.NewRNG(5)
	pc := uint64(0x400300)
	correct, total := 0, 4000
	for i := 0; i < total; i++ {
		taken := rng.Float64() < 0.5
		if g.Predict(pc) == taken {
			correct++
		}
		g.Update(pc, taken)
	}
	acc := float64(correct) / float64(total)
	if acc > 0.60 {
		t.Errorf("gshare accuracy on random outcomes = %v; want ≈0.5", acc)
	}
}

func TestGsharePanicsOnBadSizes(t *testing.T) {
	for _, f := range []func(){
		func() { NewGshare(1000, 8) },
		func() { NewGshare(0, 8) },
		func() { NewGshare(128, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBTBInsertLookup(t *testing.T) {
	b := NewBTB(64, 4)
	b.Insert(0x1000, 0x2000)
	if tgt, ok := b.Lookup(0x1000); !ok || tgt != 0x2000 {
		t.Errorf("Lookup = %#x,%v; want 0x2000,true", tgt, ok)
	}
	if _, ok := b.Lookup(0x1234); ok {
		t.Error("lookup of absent pc should miss")
	}
}

func TestBTBUpdateTarget(t *testing.T) {
	b := NewBTB(64, 4)
	b.Insert(0x1000, 0x2000)
	b.Insert(0x1000, 0x3000)
	if tgt, _ := b.Lookup(0x1000); tgt != 0x3000 {
		t.Errorf("target not updated: %#x", tgt)
	}
}

func TestBTBLRUEviction(t *testing.T) {
	b := NewBTB(8, 2) // 4 sets × 2 ways
	// Three PCs mapping to the same set (stride = sets × 4 bytes).
	p1, p2, p3 := uint64(0x1000), uint64(0x1000+4*4), uint64(0x1000+8*4)
	b.Insert(p1, 1)
	b.Insert(p2, 2)
	b.Lookup(p1) // p1 becomes MRU, p2 is LRU
	b.Insert(p3, 3)
	if _, ok := b.Lookup(p2); ok {
		t.Error("LRU entry p2 should have been evicted")
	}
	if _, ok := b.Lookup(p1); !ok {
		t.Error("MRU entry p1 should survive")
	}
	if tgt, ok := b.Lookup(p3); !ok || tgt != 3 {
		t.Error("newly inserted p3 missing")
	}
}

func TestRASPushPop(t *testing.T) {
	r := NewRAS(4)
	r.Push(10)
	r.Push(20)
	if a, ok := r.Pop(); !ok || a != 20 {
		t.Errorf("Pop = %v,%v; want 20,true", a, ok)
	}
	if a, ok := r.Pop(); !ok || a != 10 {
		t.Errorf("Pop = %v,%v; want 10,true", a, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Error("Pop of empty RAS should fail")
	}
}

func TestRASOverflowWrapsAround(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if d := r.Depth(); d != 2 {
		t.Errorf("Depth = %d, want 2", d)
	}
	if a, _ := r.Pop(); a != 3 {
		t.Errorf("first pop = %v, want 3", a)
	}
	if a, _ := r.Pop(); a != 2 {
		t.Errorf("second pop = %v, want 2", a)
	}
	if _, ok := r.Pop(); ok {
		t.Error("overwritten entry must not be poppable")
	}
}

// Property: balanced call/return sequences within capacity predict
// perfectly (LIFO behaviour).
func TestRASBalancedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		r := NewRAS(32)
		var model []uint64
		for step := 0; step < 200; step++ {
			if len(model) == 0 || (len(model) < 32 && rng.Float64() < 0.5) {
				addr := rng.Uint64()
				r.Push(addr)
				model = append(model, addr)
			} else {
				want := model[len(model)-1]
				model = model[:len(model)-1]
				got, ok := r.Pop()
				if !ok || got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: BTB lookup after insert always hits with the inserted target,
// regardless of prior contents.
func TestBTBInsertThenLookupProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		b := NewBTB(128, 4)
		for i := 0; i < 300; i++ {
			pc := uint64(rng.Intn(1<<16)) << 2
			tgt := rng.Uint64()
			b.Insert(pc, tgt)
			got, ok := b.Lookup(pc)
			if !ok || got != tgt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
