// Package power implements a Wattch-style architectural power model
// (Brooks et al., ISCA 2000): per-structure peak powers derived from the
// machine configuration by capacitance-like scaling rules, combined with
// per-interval activity factors under conditional clocking (Wattch's "cc3"
// style: idle structures still draw a fixed fraction of peak).
//
// Absolute watts are calibrated to a plausible high-performance 2007-era
// envelope (the Table 1 machine peaks near 100W); what the experiments rely
// on is the model's *response*: power grows with the sized structures and
// follows activity over time.
package power

import (
	"math"

	"repro/internal/space"
)

// idleFraction is the share of peak power a clocked-but-idle structure
// dissipates (cc3-style conditional clocking plus leakage).
const idleFraction = 0.06

// activityGain calibrates raw utilisation into the activity-factor scale.
// Theoretical peak throughput (width issues every cycle, every port busy)
// is never sustained — a machine at IPC ≈ width/2 is running flat out —
// so raw counts are scaled up before clamping at 1. Without this, static
// floors dominate and power dynamics flatten, unlike the multi-× power
// swings of the paper's Figure 1.
const activityGain = 2.2

// Structure identifies one modelled power domain.
type Structure int

// The modelled structures.
const (
	StructFetch Structure = iota
	StructBPred
	StructRenameROB
	StructIQ
	StructRegFile
	StructIntExec
	StructFPExec
	StructLSQ
	StructDL1
	StructIL1
	StructL2
	StructTLB
	StructClock
	NumStructures
)

// String returns the structure's label.
func (s Structure) String() string {
	return [...]string{
		"fetch", "bpred", "rename+rob", "iq", "regfile", "int-exec",
		"fp-exec", "lsq", "dl1", "il1", "l2", "tlb", "clock",
	}[s]
}

// Activity summarises one interval's events, the inputs to the dynamic
// power computation. It mirrors cpu.Interval but is defined here so the
// power model has no dependency on the CPU implementation.
type Activity struct {
	Cycles uint64

	Fetches     uint64
	Issues      uint64
	Commits     uint64
	IntOps      uint64
	FPOps       uint64
	MemOps      uint64
	Branches    uint64
	IL1Accesses uint64
	DL1Accesses uint64
	L2Accesses  uint64

	// Mean occupancies (entries) — drive wakeup/CAM power.
	AvgROBOcc float64
	AvgIQOcc  float64
	AvgLSQOcc float64
}

// Model holds per-structure peak powers for one configuration.
type Model struct {
	cfg   space.Config
	peaks [NumStructures]float64
}

// NewModel derives structure peak powers from the configuration.
func NewModel(cfg space.Config) *Model {
	m := &Model{cfg: cfg}
	base := space.Baseline()

	w := ratio(cfg.FetchWidth, base.FetchWidth)
	rob := ratio(cfg.ROBSize, base.ROBSize)
	iq := ratio(cfg.IQSize, base.IQSize)
	lsq := ratio(cfg.LSQSize, base.LSQSize)
	dl1 := ratio(cfg.DL1SizeKB, base.DL1SizeKB)
	il1 := ratio(cfg.IL1SizeKB, base.IL1SizeKB)
	l2 := ratio(cfg.L2SizeKB, base.L2SizeKB)

	// Baseline peaks (watts) for the Table 1 machine, scaled by structure
	// size and pipeline width. RAM-like arrays scale sublinearly with
	// capacity (bitline/wordline growth ~√size); CAM and multi-ported
	// structures scale superlinearly with width (port count).
	m.peaks[StructFetch] = 4.0 * math.Pow(w, 1.1)
	m.peaks[StructBPred] = 3.5
	m.peaks[StructRenameROB] = 6.0 * math.Pow(w, 1.1) * math.Pow(rob, 0.9)
	m.peaks[StructIQ] = 9.0 * math.Pow(iq, 0.9) * math.Pow(w, 1.2)
	m.peaks[StructRegFile] = 9.0 * math.Pow(w, 1.8)
	m.peaks[StructIntExec] = 1.2*float64(cfg.IntALU) + 1.5*float64(cfg.IntMulDiv)
	m.peaks[StructFPExec] = 1.8*float64(cfg.FPALU) + 2.2*float64(cfg.FPMulDiv)
	m.peaks[StructLSQ] = 4.0 * math.Pow(lsq, 0.9) * math.Pow(w, 1.1)
	m.peaks[StructDL1] = 7.0 * math.Pow(dl1, 0.5)
	m.peaks[StructIL1] = 5.5 * math.Pow(il1, 0.5)
	m.peaks[StructL2] = 11.0 * math.Pow(l2, 0.5)
	m.peaks[StructTLB] = 2.0

	// The clock network scales with everything it feeds.
	var sum float64
	for s := StructFetch; s < StructClock; s++ {
		sum += m.peaks[s]
	}
	m.peaks[StructClock] = 0.22 * sum
	return m
}

func ratio(v, base int) float64 { return float64(v) / float64(base) }

// PeakPower returns the sum of structure peaks (maximum instantaneous
// dissipation).
func (m *Model) PeakPower() float64 {
	var sum float64
	for _, p := range m.peaks {
		sum += p
	}
	return sum
}

// StructurePeak returns one structure's peak power.
func (m *Model) StructurePeak(s Structure) float64 { return m.peaks[s] }

// Power computes the average power over an interval of activity.
func (m *Model) Power(a Activity) float64 {
	var total float64
	for _, p := range m.Breakdown(a) {
		total += p
	}
	return total
}

// Breakdown computes the per-structure average power over an interval of
// activity (indexed by Structure).
func (m *Model) Breakdown(a Activity) [NumStructures]float64 {
	var out [NumStructures]float64
	if a.Cycles == 0 {
		return out
	}
	cyc := float64(a.Cycles)
	w := float64(m.cfg.FetchWidth)

	af := [NumStructures]float64{}
	af[StructFetch] = float64(a.Fetches) / (w * cyc)
	af[StructBPred] = float64(a.Branches+a.Fetches) / (2 * w * cyc)
	af[StructRenameROB] = 0.5*float64(a.Commits+a.Fetches)/(2*w*cyc) +
		0.5*a.AvgROBOcc/float64(m.cfg.ROBSize)
	af[StructIQ] = 0.5*float64(a.Issues)/(w*cyc) +
		0.5*a.AvgIQOcc/float64(m.cfg.IQSize)
	af[StructRegFile] = float64(a.Issues+a.Commits) / (2 * w * cyc)
	af[StructIntExec] = float64(a.IntOps) / (float64(m.cfg.IntALU+m.cfg.IntMulDiv) * cyc)
	af[StructFPExec] = float64(a.FPOps) / (float64(m.cfg.FPALU+m.cfg.FPMulDiv) * cyc)
	af[StructLSQ] = 0.5*float64(a.MemOps)/(float64(m.cfg.MemPorts)*cyc) +
		0.5*a.AvgLSQOcc/float64(m.cfg.LSQSize)
	af[StructDL1] = float64(a.DL1Accesses) / (float64(m.cfg.MemPorts) * cyc)
	af[StructIL1] = float64(a.IL1Accesses) / (w * cyc)
	af[StructL2] = float64(a.L2Accesses) / cyc
	af[StructTLB] = float64(a.IL1Accesses+a.DL1Accesses) / (2 * w * cyc)
	// The clock tree follows overall machine activity (gated regions),
	// with a floor for the always-running global spine.
	af[StructClock] = 0.15 + 0.85*activityGain*float64(a.Commits)/(w*cyc)

	for s := Structure(0); s < NumStructures; s++ {
		f := af[s] * activityGain
		if s == StructClock {
			f = af[s] // already gain-scaled above
		}
		if f > 1 {
			f = 1
		}
		if f < 0 {
			f = 0
		}
		out[s] = m.peaks[s] * (idleFraction + (1-idleFraction)*f)
	}
	return out
}
