package power

import (
	"testing"

	"repro/internal/space"
)

// busyActivity builds a plausible busy interval for a machine of width w.
func busyActivity(w int, cycles uint64) Activity {
	c := cycles
	per := uint64(w) * c / 2 // half the peak throughput
	return Activity{
		Cycles:      c,
		Fetches:     per,
		Issues:      per,
		Commits:     per,
		IntOps:      per / 2,
		FPOps:       per / 4,
		MemOps:      per / 4,
		Branches:    per / 8,
		IL1Accesses: per,
		DL1Accesses: per / 4,
		L2Accesses:  per / 50,
		AvgROBOcc:   40,
		AvgIQOcc:    30,
		AvgLSQOcc:   12,
	}
}

func TestBaselinePeakPlausible(t *testing.T) {
	m := NewModel(space.Baseline())
	p := m.PeakPower()
	if p < 50 || p > 160 {
		t.Errorf("baseline peak power = %vW, want a 2007-class envelope (50–160W)", p)
	}
}

func TestIdleFloorAndPeakCeiling(t *testing.T) {
	m := NewModel(space.Baseline())
	idle := m.Power(Activity{Cycles: 1000})
	if idle <= 0 {
		t.Fatal("idle power must be positive (leakage + clock)")
	}
	if idle > 0.35*m.PeakPower() {
		t.Errorf("idle power %v too close to peak %v", idle, m.PeakPower())
	}
	busy := m.Power(busyActivity(8, 1000))
	if busy <= idle {
		t.Errorf("busy power %v should exceed idle %v", busy, idle)
	}
	if busy > m.PeakPower() {
		t.Errorf("computed power %v exceeds peak %v", busy, m.PeakPower())
	}
}

func TestZeroCycles(t *testing.T) {
	m := NewModel(space.Baseline())
	if got := m.Power(Activity{}); got != 0 {
		t.Errorf("zero-cycle interval power = %v, want 0", got)
	}
}

func TestPowerScalesWithStructureSizes(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*space.Config)
		struc  Structure
	}{
		{"IQ", func(c *space.Config) { c.IQSize = 128 }, StructIQ},
		{"ROB", func(c *space.Config) { c.ROBSize = 160 }, StructRenameROB},
		{"LSQ", func(c *space.Config) { c.LSQSize = 64 }, StructLSQ},
		{"DL1", func(c *space.Config) { c.DL1SizeKB = 128 }, StructDL1},
		{"IL1", func(c *space.Config) { c.IL1SizeKB = 64 }, StructIL1},
		{"L2", func(c *space.Config) { c.L2SizeKB = 4096 }, StructL2},
		{"Width", func(c *space.Config) { c.FetchWidth = 16 }, StructRegFile},
	}
	base := NewModel(space.Baseline())
	for _, tc := range cases {
		cfg := space.Baseline()
		tc.mutate(&cfg)
		grown := NewModel(cfg)
		if grown.StructurePeak(tc.struc) <= base.StructurePeak(tc.struc) {
			t.Errorf("%s: enlarging the structure should raise its peak (%v vs %v)",
				tc.name, grown.StructurePeak(tc.struc), base.StructurePeak(tc.struc))
		}
		if grown.PeakPower() <= base.PeakPower() {
			t.Errorf("%s: total peak should grow", tc.name)
		}
	}
}

func TestSmallerMachineDrawsLess(t *testing.T) {
	small := space.Baseline().WithSweptValues([space.NumParams]int{2, 96, 32, 16, 256, 12, 8, 8, 1})
	if NewModel(small).PeakPower() >= NewModel(space.Baseline()).PeakPower() {
		t.Error("minimal configuration should have lower peak power than baseline")
	}
}

func TestActivityMonotonicity(t *testing.T) {
	m := NewModel(space.Baseline())
	quiet := busyActivity(8, 1000)
	quiet.Issues /= 4
	quiet.Commits /= 4
	quiet.IntOps /= 4
	busy := busyActivity(8, 1000)
	if m.Power(quiet) >= m.Power(busy) {
		t.Errorf("less activity should mean less power: quiet=%v busy=%v",
			m.Power(quiet), m.Power(busy))
	}
}

func TestActivityFactorsClamped(t *testing.T) {
	m := NewModel(space.Baseline())
	// Pathological over-counting must not push power beyond peak.
	a := busyActivity(8, 10)
	a.Issues *= 1000
	a.IntOps *= 1000
	a.DL1Accesses *= 1000
	if got := m.Power(a); got > m.PeakPower() {
		t.Errorf("clamped power %v exceeds peak %v", got, m.PeakPower())
	}
}

func TestStructureString(t *testing.T) {
	if StructIQ.String() != "iq" || StructClock.String() != "clock" {
		t.Error("structure labels wrong")
	}
}

func TestBreakdownSumsToPower(t *testing.T) {
	m := NewModel(space.Baseline())
	a := busyActivity(8, 1000)
	var sum float64
	for _, p := range m.Breakdown(a) {
		sum += p
	}
	if got := m.Power(a); got != sum {
		t.Errorf("Power %v != breakdown sum %v", got, sum)
	}
}

func TestBreakdownStructureResponds(t *testing.T) {
	m := NewModel(space.Baseline())
	quiet := busyActivity(8, 1000)
	quiet.FPOps = 0
	busy := busyActivity(8, 1000)
	bq := m.Breakdown(quiet)
	bb := m.Breakdown(busy)
	if bq[StructFPExec] >= bb[StructFPExec] {
		t.Errorf("FP structure power should rise with FP activity: %v vs %v",
			bq[StructFPExec], bb[StructFPExec])
	}
	// Idle floor: even with zero FP activity, the structure leaks.
	if bq[StructFPExec] <= 0 {
		t.Error("idle structure must still draw leakage power")
	}
}
