package regtree

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func stepData(n int) ([][]float64, []float64) {
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		v := float64(i) / float64(n-1)
		xs[i] = []float64{v, 0.5} // second feature is constant noise-free
		if v <= 0.5 {
			ys[i] = 1
		} else {
			ys[i] = 5
		}
	}
	return xs, ys
}

func TestFitStepFunction(t *testing.T) {
	xs, ys := stepData(40)
	tree, err := Fit(xs, ys, Options{MinLeafSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Predict([]float64{0.2, 0.5}); got != 1 {
		t.Errorf("Predict(0.2) = %v, want 1", got)
	}
	if got := tree.Predict([]float64{0.9, 0.5}); got != 5 {
		t.Errorf("Predict(0.9) = %v, want 5", got)
	}
	// The informative feature must be split first; the constant feature never.
	if tree.FirstSplitDepth[0] != 0 {
		t.Errorf("feature 0 first split depth = %d, want 0", tree.FirstSplitDepth[0])
	}
	if tree.FirstSplitDepth[1] != -1 {
		t.Errorf("constant feature should never split, got depth %d", tree.FirstSplitDepth[1])
	}
	if tree.SplitCounts[1] != 0 {
		t.Errorf("constant feature split count = %d, want 0", tree.SplitCounts[1])
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, Options{}); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, Options{}); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if _, err := Fit([][]float64{{}}, []float64{1}, Options{}); err == nil {
		t.Error("zero-dimensional features should fail")
	}
	if _, err := Fit([][]float64{{1}, {2, 3}}, []float64{1, 2}, Options{}); err == nil {
		t.Error("ragged features should fail")
	}
}

func TestMinLeafSizeRespected(t *testing.T) {
	rng := mathx.NewRNG(3)
	n := 100
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = []float64{rng.Float64()}
		ys[i] = rng.Float64()
	}
	tree, err := Fit(xs, ys, Options{MinLeafSize: 10, MaxDepth: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range tree.Nodes() {
		if node.IsLeaf() && node.Count < 10 {
			t.Errorf("leaf with %d samples violates MinLeafSize 10", node.Count)
		}
	}
}

func TestMaxDepthRespected(t *testing.T) {
	rng := mathx.NewRNG(4)
	n := 200
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = []float64{rng.Float64(), rng.Float64()}
		ys[i] = xs[i][0]*7 + xs[i][1]
	}
	tree, err := Fit(xs, ys, Options{MinLeafSize: 2, MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d := tree.Depth(); d > 3 {
		t.Errorf("tree depth = %d, want <= 3", d)
	}
}

func TestImportanceRanksInformativeFeature(t *testing.T) {
	rng := mathx.NewRNG(5)
	n := 300
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		// Feature 1 dominates; feature 2 is weak; feature 0 is noise.
		ys[i] = 10*xs[i][1] + 0.5*xs[i][2] + 0.01*rng.Float64()
	}
	tree, err := Fit(xs, ys, Options{MinLeafSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	byOrder := tree.ImportanceByOrder()
	byFreq := tree.ImportanceByFrequency()
	if byOrder[1] != 1 {
		t.Errorf("dominant feature order importance = %v, want 1", byOrder[1])
	}
	if byFreq[1] != 1 {
		t.Errorf("dominant feature frequency importance = %v, want 1", byFreq[1])
	}
	if byFreq[0] >= byFreq[1] {
		t.Errorf("noise feature frequency %v >= dominant %v", byFreq[0], byFreq[1])
	}
}

func TestNodeGeometry(t *testing.T) {
	xs, ys := stepData(40)
	tree, err := Fit(xs, ys, Options{MinLeafSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	root := tree.Root
	c := root.Center()
	if math.Abs(c[0]-0.5) > 1e-9 {
		t.Errorf("root center x = %v, want 0.5", c[0])
	}
	e := root.Extent()
	if math.Abs(e[0]-1) > 1e-9 {
		t.Errorf("root extent x = %v, want 1", e[0])
	}
	// Children partition the root box along the split feature.
	l, r := root.Left, root.Right
	if l.Hi[root.Feature] != root.Threshold || r.Lo[root.Feature] != root.Threshold {
		t.Error("children do not partition parent box at the threshold")
	}
}

func TestPerfectFitOnSeparableData(t *testing.T) {
	// With MinLeafSize 1, a tree must drive training SSE of a piecewise
	// constant target to ~0.
	xs, ys := stepData(32)
	tree, err := Fit(xs, ys, Options{MinLeafSize: 1, MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if got := tree.Predict(xs[i]); got != ys[i] {
			t.Errorf("Predict(%v) = %v, want %v", xs[i], got, ys[i])
		}
	}
}

func TestConstantResponse(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}, {9}, {10}, {11}, {12}}
	ys := make([]float64, len(xs))
	for i := range ys {
		ys[i] = 7
	}
	tree, err := Fit(xs, ys, Options{MinLeafSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Root.IsLeaf() {
		t.Error("constant response should produce a single leaf")
	}
	if got := tree.Predict([]float64{99}); got != 7 {
		t.Errorf("Predict = %v, want 7", got)
	}
}

// Property: every split strictly reduces total SSE, and children counts sum
// to the parent count.
func TestSplitInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		n := 20 + rng.Intn(100)
		d := 1 + rng.Intn(4)
		xs := make([][]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = make([]float64, d)
			for j := range xs[i] {
				xs[i][j] = rng.Float64()
			}
			ys[i] = xs[i][0]*3 + rng.Float64()*0.2
		}
		tree, err := Fit(xs, ys, Options{MinLeafSize: 3})
		if err != nil {
			return false
		}
		for _, node := range tree.Nodes() {
			if node.IsLeaf() {
				continue
			}
			if node.Left.Count+node.Right.Count != node.Count {
				return false
			}
			if node.Left.SSE+node.Right.SSE > node.SSE+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: tree prediction of any point inside the training extent equals
// the mean of one of its leaves.
func TestPredictInLeafMeansProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		n := 30 + rng.Intn(50)
		xs := make([][]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = []float64{rng.Float64(), rng.Float64()}
			ys[i] = xs[i][0] - xs[i][1]
		}
		tree, err := Fit(xs, ys, Options{MinLeafSize: 4})
		if err != nil {
			return false
		}
		leafMeans := map[float64]bool{}
		for _, node := range tree.Nodes() {
			if node.IsLeaf() {
				leafMeans[node.Mean] = true
			}
		}
		for trial := 0; trial < 20; trial++ {
			p := tree.Predict([]float64{rng.Float64(), rng.Float64()})
			if !leafMeans[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
