// Package regtree implements a CART-style regression tree over dense
// float64 feature vectors.
//
// The tree serves three purposes in this repository, mirroring its roles in
// the paper:
//
//  1. RBF centre/radius selection (Orr et al. 2000): every tree node defines
//     a hyperrectangle whose centre and extent seed one radial basis
//     function (Section 2.2 of the paper).
//  2. Parameter-significance analysis (Figure 11): the split order and split
//     frequency of each input feature rank how strongly each
//     microarchitecture parameter drives a wavelet coefficient.
//  3. A piecewise-constant predictor in its own right, used as a baseline.
package regtree

import (
	"fmt"
	"math"
	"sort"
)

// Options controls tree growth.
type Options struct {
	// MinLeafSize is the smallest number of samples a leaf may hold.
	// Defaults to 5.
	MinLeafSize int
	// MaxDepth bounds tree depth (root at depth 0). Defaults to 12.
	MaxDepth int
	// MinImprove is the minimum absolute SSE reduction a split must achieve.
	// Defaults to 1e-12.
	MinImprove float64
}

func (o Options) withDefaults() Options {
	if o.MinLeafSize <= 0 {
		o.MinLeafSize = 5
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 12
	}
	if o.MinImprove <= 0 {
		o.MinImprove = 1e-12
	}
	return o
}

// Node is one node of a fitted tree. Leaves have nil children.
type Node struct {
	// Mean is the mean response of the samples in this node.
	Mean float64
	// SSE is the sum of squared errors around Mean.
	SSE float64
	// Count is the number of training samples in the node.
	Count int
	// Depth is the node's distance from the root.
	Depth int
	// Feature and Threshold define the split (valid when Left != nil):
	// samples with x[Feature] <= Threshold go left.
	Feature   int
	Threshold float64
	// Lo and Hi bound the node's hyperrectangle in input space, inherited
	// from the training data extent and refined by ancestor splits.
	Lo, Hi []float64

	Left, Right *Node
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return n.Left == nil }

// Center returns the midpoint of the node's hyperrectangle.
func (n *Node) Center() []float64 {
	c := make([]float64, len(n.Lo))
	for i := range c {
		c[i] = (n.Lo[i] + n.Hi[i]) / 2
	}
	return c
}

// Extent returns the per-dimension width of the node's hyperrectangle.
func (n *Node) Extent() []float64 {
	e := make([]float64, len(n.Lo))
	for i := range e {
		e[i] = n.Hi[i] - n.Lo[i]
	}
	return e
}

// Tree is a fitted regression tree.
type Tree struct {
	Root *Node
	// NumFeatures is the input dimensionality.
	NumFeatures int
	// SplitCounts[f] is the number of internal nodes splitting on feature f
	// (Figure 11b, "by split frequency").
	SplitCounts []int
	// FirstSplitDepth[f] is the depth of the shallowest node splitting on
	// feature f, or -1 if f is never split (Figure 11a, "by split order":
	// parameters that cause the most output variation split earliest).
	FirstSplitDepth []int
	nodes           []*Node
}

// Fit grows a regression tree on xs (n samples × d features) and ys (n
// responses). It returns an error for inconsistent or empty input.
func Fit(xs [][]float64, ys []float64, opts Options) (*Tree, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("regtree: no samples")
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("regtree: %d samples but %d responses", len(xs), len(ys))
	}
	d := len(xs[0])
	if d == 0 {
		return nil, fmt.Errorf("regtree: zero-dimensional features")
	}
	for i, x := range xs {
		if len(x) != d {
			return nil, fmt.Errorf("regtree: sample %d has %d features, want %d", i, len(x), d)
		}
	}
	opts = opts.withDefaults()

	t := &Tree{
		NumFeatures:     d,
		SplitCounts:     make([]int, d),
		FirstSplitDepth: make([]int, d),
	}
	for f := range t.FirstSplitDepth {
		t.FirstSplitDepth[f] = -1
	}

	// Root bounds: the data extent.
	lo := make([]float64, d)
	hi := make([]float64, d)
	copy(lo, xs[0])
	copy(hi, xs[0])
	for _, x := range xs[1:] {
		for j, v := range x {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}

	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	t.Root = t.grow(xs, ys, idx, 0, lo, hi, opts)
	return t, nil
}

func meanSSE(ys []float64, idx []int) (mean, sse float64) {
	for _, i := range idx {
		mean += ys[i]
	}
	mean /= float64(len(idx))
	for _, i := range idx {
		d := ys[i] - mean
		sse += d * d
	}
	return mean, sse
}

type split struct {
	feature   int
	threshold float64
	sseAfter  float64
}

// bestSplit finds the SSE-minimising binary split of idx, or ok=false when
// no admissible split exists.
func bestSplit(xs [][]float64, ys []float64, idx []int, minLeaf int) (split, bool) {
	best := split{sseAfter: math.Inf(1)}
	found := false
	n := len(idx)
	order := make([]int, n)
	for f := 0; f < len(xs[0]); f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return xs[order[a]][f] < xs[order[b]][f] })

		// Prefix sums over the sorted order for O(1) SSE of each cut.
		var sumL, sqL float64
		var sumT, sqT float64
		for _, i := range order {
			sumT += ys[i]
			sqT += ys[i] * ys[i]
		}
		for cut := 1; cut < n; cut++ {
			y := ys[order[cut-1]]
			sumL += y
			sqL += y * y
			// Can't split between equal feature values.
			if xs[order[cut-1]][f] == xs[order[cut]][f] {
				continue
			}
			if cut < minLeaf || n-cut < minLeaf {
				continue
			}
			nl, nr := float64(cut), float64(n-cut)
			sumR, sqR := sumT-sumL, sqT-sqL
			sse := (sqL - sumL*sumL/nl) + (sqR - sumR*sumR/nr)
			if sse < best.sseAfter {
				best = split{
					feature:   f,
					threshold: (xs[order[cut-1]][f] + xs[order[cut]][f]) / 2,
					sseAfter:  sse,
				}
				found = true
			}
		}
	}
	return best, found
}

func (t *Tree) grow(xs [][]float64, ys []float64, idx []int, depth int, lo, hi []float64, opts Options) *Node {
	mean, sse := meanSSE(ys, idx)
	node := &Node{
		Mean: mean, SSE: sse, Count: len(idx), Depth: depth,
		Lo: append([]float64(nil), lo...),
		Hi: append([]float64(nil), hi...),
	}
	t.nodes = append(t.nodes, node)

	if depth >= opts.MaxDepth || len(idx) < 2*opts.MinLeafSize || sse <= opts.MinImprove {
		return node
	}
	sp, ok := bestSplit(xs, ys, idx, opts.MinLeafSize)
	if !ok || sse-sp.sseAfter < opts.MinImprove {
		return node
	}

	node.Feature = sp.feature
	node.Threshold = sp.threshold
	t.SplitCounts[sp.feature]++
	if t.FirstSplitDepth[sp.feature] < 0 || depth < t.FirstSplitDepth[sp.feature] {
		t.FirstSplitDepth[sp.feature] = depth
	}

	var left, right []int
	for _, i := range idx {
		if xs[i][sp.feature] <= sp.threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	loL, hiL := append([]float64(nil), lo...), append([]float64(nil), hi...)
	loR, hiR := append([]float64(nil), lo...), append([]float64(nil), hi...)
	hiL[sp.feature] = sp.threshold
	loR[sp.feature] = sp.threshold
	node.Left = t.grow(xs, ys, left, depth+1, loL, hiL, opts)
	node.Right = t.grow(xs, ys, right, depth+1, loR, hiR, opts)
	return node
}

// Predict returns the mean response of the leaf containing x.
func (t *Tree) Predict(x []float64) float64 {
	n := t.Root
	for !n.IsLeaf() {
		if x[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Mean
}

// Nodes returns every node in the tree in breadth-last (creation) order; the
// root is first. The slice is shared with the tree — do not modify.
func (t *Tree) Nodes() []*Node { return t.nodes }

// NumLeaves returns the number of leaf nodes.
func (t *Tree) NumLeaves() int {
	count := 0
	for _, n := range t.nodes {
		if n.IsLeaf() {
			count++
		}
	}
	return count
}

// Depth returns the maximum node depth.
func (t *Tree) Depth() int {
	max := 0
	for _, n := range t.nodes {
		if n.Depth > max {
			max = n.Depth
		}
	}
	return max
}

// ImportanceByOrder returns a score per feature derived from the first-split
// depth: features split nearer the root score higher, never-split features
// score zero. Scores are scaled to max 1, matching the star-plot convention
// where spoke length is relative to the maximum.
func (t *Tree) ImportanceByOrder() []float64 {
	scores := make([]float64, t.NumFeatures)
	for f, d := range t.FirstSplitDepth {
		if d >= 0 {
			scores[f] = 1 / float64(d+1)
		}
	}
	normalizeMax(scores)
	return scores
}

// ImportanceByFrequency returns per-feature split counts scaled to max 1.
func (t *Tree) ImportanceByFrequency() []float64 {
	scores := make([]float64, t.NumFeatures)
	for f, c := range t.SplitCounts {
		scores[f] = float64(c)
	}
	normalizeMax(scores)
	return scores
}

func normalizeMax(xs []float64) {
	var max float64
	for _, v := range xs {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return
	}
	for i := range xs {
		xs[i] /= max
	}
}
