package wire

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/obs"
)

// This file is the leaderless control plane's wire surface: anti-entropy
// membership digests exchanged between symmetric peers (POST /v1/gossip)
// and the job-replication payloads that let a peer adopt and finish an
// orphaned sweep (POST /v1/jobs/replicate). Replication is cheap by
// design — merged snapshots are cumulative and mergeable (PR 3–5), so a
// job's whole recoverable state is its spec, its latest snapshot, and a
// ledger of merged shard ranges.

// Gossip member states, in increasing "badness". For one incarnation a
// worse state always wins a merge; a node escapes suspicion only by
// re-asserting itself under a higher incarnation (refutation).
const (
	GossipAlive   = "alive"
	GossipSuspect = "suspect"
	GossipDead    = "dead"
)

// GossipEntry is one row of the versioned member table. Ordering between
// two entries for the same node is (Incarnation, state badness, Beat):
// higher incarnation wins outright; within an incarnation dead > suspect
// > alive; between two alive entries the higher heartbeat counter is
// fresher. Beat is bumped only by the node the entry describes,
// Incarnation only by that node refuting a suspicion about itself.
type GossipEntry struct {
	Addr        string `json:"addr"`
	Incarnation uint64 `json:"incarnation"`
	Beat        uint64 `json:"beat"`
	State       string `json:"state"`
	// Inventory mirrors the heartbeat adverts so the gossip view can
	// drive shard placement exactly like registration did.
	Capacity    int            `json:"capacity,omitempty"`
	Benchmarks  []string       `json:"benchmarks,omitempty"`
	QueueDepths map[string]int `json:"queue_depths,omitempty"`
}

// MaxGossipEntries bounds one digest; fleets larger than this gossip a
// random subset per round and still converge.
const MaxGossipEntries = 1024

// GossipRequest is the body of POST /v1/gossip: the sender's full
// digest. The response carries the receiver's digest back, making every
// exchange push-pull.
type GossipRequest struct {
	From    string        `json:"from"`
	Entries []GossipEntry `json:"entries"`
}

// Validate rejects malformed digests.
func (r GossipRequest) Validate() error {
	if r.From == "" {
		return errors.New("gossip needs a from address")
	}
	if len(r.Entries) > MaxGossipEntries {
		return fmt.Errorf("gossip digest carries at most %d entries (got %d)", MaxGossipEntries, len(r.Entries))
	}
	for _, e := range r.Entries {
		if e.Addr == "" {
			return errors.New("gossip entry without an address")
		}
		switch e.State {
		case GossipAlive, GossipSuspect, GossipDead:
		default:
			return fmt.Errorf("unknown gossip state %q", e.State)
		}
	}
	return nil
}

// GossipResponse answers POST /v1/gossip with the receiver's digest.
type GossipResponse struct {
	From    string        `json:"from"`
	Entries []GossipEntry `json:"entries"`
}

// ShardRange is one merged [Start, Start+Count) slice of a sweep's
// design list — the unit of the replicated shard ledger. A resuming
// adopter re-dispatches only the complement, so every design is merged
// exactly once across the handoff.
type ShardRange struct {
	Start int `json:"start"`
	Count int `json:"count"`
}

// AddRange inserts r into a ledger kept sorted by Start, coalescing
// adjacent and overlapping ranges, and returns the updated ledger.
func AddRange(ledger []ShardRange, r ShardRange) []ShardRange {
	if r.Count <= 0 {
		return ledger
	}
	ledger = append(ledger, r)
	sort.Slice(ledger, func(i, j int) bool { return ledger[i].Start < ledger[j].Start })
	out := ledger[:1]
	for _, next := range ledger[1:] {
		last := &out[len(out)-1]
		if next.Start <= last.Start+last.Count {
			if end := next.Start + next.Count; end > last.Start+last.Count {
				last.Count = end - last.Start
			}
			continue
		}
		out = append(out, next)
	}
	return out
}

// RangesTotal sums the designs covered by a (coalesced) ledger.
func RangesTotal(ledger []ShardRange) int {
	n := 0
	for _, r := range ledger {
		n += r.Count
	}
	return n
}

// SnapshotCandidate is one retained candidate of a replicated cumulative
// snapshot. Index is the candidate's position in the job's full design
// list: top-K selection tie-breaks on it, so replicating indices keeps
// an adopted job's answer bit-identical to the unkilled run. Frontier
// jobs ignore indices (Index is -1 there).
type SnapshotCandidate struct {
	Index     int       `json:"index"`
	Candidate Candidate `json:"candidate"`
}

// Replicated job kinds.
const (
	ReplicaSweep  = "sweep"
	ReplicaPareto = "pareto"
)

// MaxReplicatedSpans bounds the trace excerpt a replication payload
// carries; an adopter splices these under the owner's root span so the
// job's cross-node trace tree survives the owner.
const MaxReplicatedSpans = 512

// ReplicateRequest is the body of POST /v1/jobs/replicate: the owning
// node's latest recoverable state for one job, pushed to each of its f
// replicas after every merged shard. Seq orders payloads (replicas keep
// the newest); Done retires the entry once the job finishes.
type ReplicateRequest struct {
	JobID string `json:"job_id"`
	Kind  string `json:"kind"`
	Owner string `json:"owner"`
	// Replicas is the adoption order: when the owner dies, the first
	// alive address adopts. Every replica holds the same list, so the
	// fleet agrees on the successor without an election.
	Replicas  []string `json:"replicas,omitempty"`
	Benchmark string   `json:"benchmark"`
	Designs   int      `json:"designs"`
	Seq       int      `json:"seq"`

	// Exactly one of Sweep/Pareto holds the job's spec, with the design
	// list in resolvable (seed-deterministic) form.
	Sweep  *SweepRequest  `json:"sweep,omitempty"`
	Pareto *ParetoRequest `json:"pareto,omitempty"`

	// Merged-so-far state: cumulative counters, the latest merged
	// snapshot, and the ledger of shard ranges it already covers.
	Evaluated int                 `json:"evaluated"`
	Feasible  int                 `json:"feasible"`
	Shards    int                 `json:"shards"`
	Retries   int                 `json:"retries"`
	Snapshot  []SnapshotCandidate `json:"snapshot,omitempty"`
	Ledger    []ShardRange        `json:"ledger,omitempty"`

	// Trace splice: the owner's root span context plus the spans
	// recorded so far, so the adopter continues the same tree.
	Traceparent string     `json:"traceparent,omitempty"`
	Spans       []obs.Span `json:"spans,omitempty"`

	Done bool `json:"done,omitempty"`
}

// Validate rejects malformed replication payloads.
func (r ReplicateRequest) Validate() error {
	if r.JobID == "" {
		return errors.New("replicate needs a job id")
	}
	if r.Owner == "" {
		return errors.New("replicate needs an owner address")
	}
	if r.Done {
		return nil // a retirement notice needs no spec
	}
	switch r.Kind {
	case ReplicaSweep:
		if r.Sweep == nil {
			return errors.New("sweep replica without a sweep spec")
		}
	case ReplicaPareto:
		if r.Pareto == nil {
			return errors.New("pareto replica without a pareto spec")
		}
	default:
		return fmt.Errorf("unknown replica kind %q", r.Kind)
	}
	if r.Designs <= 0 {
		return errors.New("replicate needs the job's design count")
	}
	if len(r.Spans) > MaxReplicatedSpans {
		return fmt.Errorf("replicate carries at most %d spans (got %d)", MaxReplicatedSpans, len(r.Spans))
	}
	for _, rg := range r.Ledger {
		if rg.Start < 0 || rg.Count <= 0 || rg.Start+rg.Count > r.Designs {
			return fmt.Errorf("ledger range [%d,+%d) outside the job's %d designs", rg.Start, rg.Count, r.Designs)
		}
	}
	return nil
}

// ReplicateResponse acknowledges a replication payload.
type ReplicateResponse struct {
	JobID string `json:"job_id"`
	Seq   int    `json:"seq"`
}
