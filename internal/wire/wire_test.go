package wire

import (
	"strings"
	"testing"
)

func TestRegisterRequestValidate(t *testing.T) {
	big := make([]string, MaxInventoryBenchmarks+1)
	for i := range big {
		big[i] = "b"
	}
	cases := []struct {
		name string
		req  RegisterRequest
		ok   bool
	}{
		{"minimal", RegisterRequest{Addr: "127.0.0.1:8091"}, true},
		{"url form", RegisterRequest{Addr: "http://worker-3:8091"}, true},
		{"with inventory", RegisterRequest{Addr: "w:1", Capacity: 8, Benchmarks: []string{"gcc", "mcf"}}, true},
		{"no addr", RegisterRequest{}, false},
		{"portless addr", RegisterRequest{Addr: "worker-3"}, false},
		{"negative capacity", RegisterRequest{Addr: "w:1", Capacity: -1}, false},
		{"oversized inventory", RegisterRequest{Addr: "w:1", Benchmarks: big}, false},
		{"empty benchmark name", RegisterRequest{Addr: "w:1", Benchmarks: []string{""}}, false},
		{"oversized benchmark name", RegisterRequest{Addr: "w:1", Benchmarks: []string{strings.Repeat("x", 129)}}, false},
	}
	for _, tc := range cases {
		err := tc.req.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid request accepted", tc.name)
		}
		// Heartbeats share the register shape and verdicts exactly.
		herr := HeartbeatRequest(tc.req).Validate()
		if (err == nil) != (herr == nil) {
			t.Errorf("%s: heartbeat validation diverged from register (%v vs %v)", tc.name, herr, err)
		}
	}
}
