// Package wire defines the JSON wire format of the dsed daemon — design
// points, objective and space selectors, and the request/response bodies
// of every endpoint. It exists as its own package so the serving layer
// (cmd/dsed) and the distributed sweep plane (internal/cluster, whose
// HTTP transport speaks to workers in exactly this format) cannot drift
// apart: one type per message, shared by both sides of the wire.
package wire

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/explore"
	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/space"
)

// ConfigSpec is the wire form of a design point: any omitted swept
// parameter inherits the Table 1 baseline.
type ConfigSpec struct {
	FetchWidth   *int     `json:"fetch_width"`
	ROBSize      *int     `json:"rob_size"`
	IQSize       *int     `json:"iq_size"`
	LSQSize      *int     `json:"lsq_size"`
	L2SizeKB     *int     `json:"l2_size_kb"`
	L2Lat        *int     `json:"l2_lat"`
	IL1SizeKB    *int     `json:"il1_size_kb"`
	DL1SizeKB    *int     `json:"dl1_size_kb"`
	DL1Lat       *int     `json:"dl1_lat"`
	DVM          *bool    `json:"dvm"`
	DVMThreshold *float64 `json:"dvm_threshold"`
}

// Apply overlays the spec on a base configuration and validates the result.
func (s ConfigSpec) Apply(base space.Config) (space.Config, error) {
	set := func(dst *int, v *int) {
		if v != nil {
			*dst = *v
		}
	}
	set(&base.FetchWidth, s.FetchWidth)
	set(&base.ROBSize, s.ROBSize)
	set(&base.IQSize, s.IQSize)
	set(&base.LSQSize, s.LSQSize)
	set(&base.L2SizeKB, s.L2SizeKB)
	set(&base.L2Lat, s.L2Lat)
	set(&base.IL1SizeKB, s.IL1SizeKB)
	set(&base.DL1SizeKB, s.DL1SizeKB)
	set(&base.DL1Lat, s.DL1Lat)
	if s.DVM != nil {
		base.DVM = *s.DVM
	}
	if s.DVMThreshold != nil {
		base.DVMThreshold = *s.DVMThreshold
	}
	return base, base.Validate()
}

// SpecFromConfig pins every swept parameter of c into a ConfigSpec, so a
// coordinator shipping a materialised design to a worker loses nothing to
// the worker's baseline defaults (including the DVM threshold, which the
// compact ConfigJSON echo omits).
func SpecFromConfig(c space.Config) ConfigSpec {
	return ConfigSpec{
		FetchWidth: &c.FetchWidth, ROBSize: &c.ROBSize, IQSize: &c.IQSize,
		LSQSize: &c.LSQSize, L2SizeKB: &c.L2SizeKB, L2Lat: &c.L2Lat,
		IL1SizeKB: &c.IL1SizeKB, DL1SizeKB: &c.DL1SizeKB, DL1Lat: &c.DL1Lat,
		DVM: &c.DVM, DVMThreshold: &c.DVMThreshold,
	}
}

// ConfigJSON is the wire form of a fully resolved design point.
type ConfigJSON struct {
	FetchWidth int  `json:"fetch_width"`
	ROBSize    int  `json:"rob_size"`
	IQSize     int  `json:"iq_size"`
	LSQSize    int  `json:"lsq_size"`
	L2SizeKB   int  `json:"l2_size_kb"`
	L2Lat      int  `json:"l2_lat"`
	IL1SizeKB  int  `json:"il1_size_kb"`
	DL1SizeKB  int  `json:"dl1_size_kb"`
	DL1Lat     int  `json:"dl1_lat"`
	DVM        bool `json:"dvm,omitempty"`
}

// ToConfigJSON compacts a design point into its response echo.
func ToConfigJSON(c space.Config) ConfigJSON {
	return ConfigJSON{
		FetchWidth: c.FetchWidth, ROBSize: c.ROBSize, IQSize: c.IQSize,
		LSQSize: c.LSQSize, L2SizeKB: c.L2SizeKB, L2Lat: c.L2Lat,
		IL1SizeKB: c.IL1SizeKB, DL1SizeKB: c.DL1SizeKB, DL1Lat: c.DL1Lat,
		DVM: c.DVM,
	}
}

// ToConfig expands the echo back over the baseline. Fields ConfigJSON does
// not carry (the DVM threshold, fixed Table 1 structures) take baseline
// values — both sides of the wire lose exactly the same information, so a
// merged cluster answer re-encodes byte-identically to a worker's.
func (j ConfigJSON) ToConfig() space.Config {
	c := space.Baseline()
	c.FetchWidth, c.ROBSize, c.IQSize = j.FetchWidth, j.ROBSize, j.IQSize
	c.LSQSize, c.L2SizeKB, c.L2Lat = j.LSQSize, j.L2SizeKB, j.L2Lat
	c.IL1SizeKB, c.DL1SizeKB, c.DL1Lat = j.IL1SizeKB, j.DL1SizeKB, j.DL1Lat
	c.DVM = j.DVM
	return c
}

// ParseMetric resolves a wire metric label.
func ParseMetric(name string) (sim.Metric, error) {
	m, ok := sim.MetricByName(name)
	if !ok {
		return 0, fmt.Errorf("unknown metric %q", name)
	}
	return m, nil
}

// ObjectiveSpec names one scoring rule over a predicted trace.
type ObjectiveSpec struct {
	Metric string `json:"metric"`
	// Kind is "mean" (default), "worst", or "exceedance".
	Kind      string  `json:"kind,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
}

// Build resolves the spec into an exploration objective.
func (o ObjectiveSpec) Build() (explore.Objective, error) {
	name := o.Metric + "_" + o.Kind
	switch o.Kind {
	case "", "mean":
		return explore.MeanObjective(o.Metric + "_mean"), nil
	case "worst":
		return explore.WorstCaseObjective(name), nil
	case "exceedance":
		return explore.ExceedanceObjective(fmt.Sprintf("%s_exceed_%g", o.Metric, o.Threshold), o.Threshold), nil
	}
	return explore.Objective{}, fmt.Errorf("unknown objective kind %q", o.Kind)
}

// SpaceSpec selects the candidate designs of a sweep: an explicit list,
// or a named Table 2 space ("train" or "test") — full factorial by
// default, optionally LHS-subsampled to Sample designs.
type SpaceSpec struct {
	Designs []ConfigSpec `json:"designs,omitempty"`
	Space   string       `json:"space,omitempty"`
	Sample  int          `json:"sample,omitempty"`
	Seed    uint64       `json:"seed,omitempty"`
}

// explicitDesigns resolves the explicit design list (empty when a named
// space is selected instead).
func (sp SpaceSpec) explicitDesigns() ([]space.Config, error) {
	out := make([]space.Config, len(sp.Designs))
	for i, cs := range sp.Designs {
		c, err := cs.Apply(space.Baseline())
		if err != nil {
			return nil, fmt.Errorf("design %d: %w", i, err)
		}
		out[i] = c
	}
	return out, nil
}

// levels resolves the named Table 2 space.
func (sp SpaceSpec) levels() (space.Levels, error) {
	switch sp.Space {
	case "", "train":
		return space.TrainLevels(), nil
	case "test":
		return space.TestLevels(), nil
	}
	return space.Levels{}, fmt.Errorf("unknown space %q (want train or test)", sp.Space)
}

// ResolveEarly materialises the design list when that is cheap (an
// explicit list, bounded by the body limit) and otherwise only checks
// the named space — handlers run it before resolving models (which may
// train on demand) and call ResolveLate afterwards, so a malformed or
// unknown request never pays training or a full-factorial allocation,
// and no request validates the same designs twice.
func (sp SpaceSpec) ResolveEarly() ([]space.Config, error) {
	if len(sp.Designs) > 0 {
		return sp.explicitDesigns()
	}
	_, err := sp.levels()
	return nil, err
}

// ResolveLate materialises the named space after model resolution; early
// is ResolveEarly's result, returned as-is for explicit lists.
func (sp SpaceSpec) ResolveLate(early []space.Config) []space.Config {
	if early != nil {
		return early
	}
	// levels cannot fail here: ResolveEarly validated the name.
	levels, _ := sp.levels()
	if sp.Sample > 0 {
		seed := sp.Seed
		if seed == 0 {
			seed = 1
		}
		return space.SampleDesign(sp.Sample, levels, space.Baseline(), 4, mathx.NewRNG(seed))
	}
	return levels.FullFactorial(space.Baseline())
}

// Constraint is the wire form of explore.Constraint.
type Constraint struct {
	Objective int     `json:"objective"`
	Max       float64 `json:"max"`
}

// Candidate is the wire form of one evaluated design point.
type Candidate struct {
	Config ConfigJSON `json:"config"`
	Scores []float64  `json:"scores"`
}

// ToExplore expands the wire candidate back into engine form.
func (c Candidate) ToExplore() explore.Candidate {
	return explore.Candidate{Config: c.Config.ToConfig(), Scores: c.Scores}
}

// ToCandidates compacts evaluated candidates for a response.
func ToCandidates(cands []explore.Candidate) []Candidate {
	out := make([]Candidate, len(cands))
	for i, c := range cands {
		out[i] = Candidate{Config: ToConfigJSON(c.Config), Scores: c.Scores}
	}
	return out
}

// Error is the uniform JSON error envelope of every endpoint.
type Error struct {
	Error string `json:"error"`
}

// PredictRequest is the body of POST /predict. The single form names one
// metric and config; the batch form (configs and/or metrics set) scores
// many configs under many metrics in one request.
type PredictRequest struct {
	Benchmark string     `json:"benchmark"`
	Metric    string     `json:"metric,omitempty"`
	Config    ConfigSpec `json:"config"`

	Metrics []string     `json:"metrics,omitempty"`
	Configs []ConfigSpec `json:"configs,omitempty"`
	// IncludeTraces adds the full predicted traces to batch responses
	// (single-form responses always carry the trace).
	IncludeTraces bool `json:"include_traces,omitempty"`
}

// PredictResponse answers the single form of POST /predict.
type PredictResponse struct {
	Benchmark string     `json:"benchmark"`
	Metric    string     `json:"metric"`
	Config    ConfigJSON `json:"config"`
	Trace     []float64  `json:"trace"`
	Mean      float64    `json:"mean"`
	Worst     float64    `json:"worst"`
}

// PredictResult is one cell of a batch prediction matrix.
type PredictResult struct {
	Mean  float64   `json:"mean"`
	Worst float64   `json:"worst"`
	Trace []float64 `json:"trace,omitempty"`
}

// BatchPredictResponse answers the batch form of POST /predict.
type BatchPredictResponse struct {
	Benchmark string       `json:"benchmark"`
	Metrics   []string     `json:"metrics"`
	Configs   []ConfigJSON `json:"configs"`
	// Results[i][j] scores Configs[i] under Metrics[j].
	Results   [][]PredictResult `json:"results"`
	ElapsedMS float64           `json:"elapsed_ms"`
}

// SweepRequest is the body of POST /sweep: streaming top-K constrained
// selection over a design space.
type SweepRequest struct {
	Benchmark  string          `json:"benchmark"`
	Objectives []ObjectiveSpec `json:"objectives"`
	SpaceSpec
	// TopK bounds how many candidates are returned (default 10).
	TopK int `json:"top_k,omitempty"`
	// Objective indexes Objectives as the minimisation target (default 0).
	Objective   int          `json:"objective,omitempty"`
	Constraints []Constraint `json:"constraints,omitempty"`
	// Scope is empty for an ordinary submission, or ScopeLocal on a
	// shard dispatched by a coordinating node — a symmetric peer then
	// evaluates it locally instead of distributing it again.
	Scope string `json:"scope,omitempty"`
}

// Validate rejects malformed sweep requests — empty or unknown
// objectives, out-of-range objective and constraint indexes. It is the
// single accept/reject rule shared by a worker's /sweep and a
// coordinator's /cluster/sweep, so the two surfaces cannot drift.
func (r SweepRequest) Validate() error {
	if err := validateObjectives(r.Objectives); err != nil {
		return err
	}
	if r.Objective < 0 || r.Objective >= len(r.Objectives) {
		return fmt.Errorf("objective index %d out of range", r.Objective)
	}
	for _, con := range r.Constraints {
		if con.Objective < 0 || con.Objective >= len(r.Objectives) {
			return fmt.Errorf("constraint objective index %d out of range", con.Objective)
		}
	}
	return validateScope(r.Scope)
}

// ScopeLocal marks a request as a shard of a distributed job: the
// receiving node must evaluate it on its own registry, never fan it out
// again. Without the marker two symmetric peers would bounce a sweep
// between their coordinators forever.
const ScopeLocal = "local"

func validateScope(scope string) error {
	if scope != "" && scope != ScopeLocal {
		return fmt.Errorf("unknown scope %q (want empty or %q)", scope, ScopeLocal)
	}
	return nil
}

// ErrNoObjectives rejects sweeps with nothing to optimise.
var ErrNoObjectives = errors.New("no objectives given")

// validateObjectives rejects empty objective lists, bad kinds, and
// unknown metric names up front — before a worker resolves models (which
// could train on demand) or a coordinator fans a doomed request across
// the fleet.
func validateObjectives(specs []ObjectiveSpec) error {
	if len(specs) == 0 {
		return ErrNoObjectives
	}
	for _, spec := range specs {
		if _, err := spec.Build(); err != nil {
			return err
		}
		if _, err := ParseMetric(spec.Metric); err != nil {
			return err
		}
	}
	return nil
}

// SweepResponse answers POST /sweep.
type SweepResponse struct {
	Benchmark  string      `json:"benchmark"`
	Objectives []string    `json:"objectives"`
	Evaluated  int         `json:"evaluated"`
	Feasible   int         `json:"feasible"`
	ElapsedMS  float64     `json:"elapsed_ms"`
	Candidates []Candidate `json:"candidates"`
}

// ParetoRequest is the body of POST /pareto: the Pareto frontier of a
// design space under the chosen objectives.
type ParetoRequest struct {
	Benchmark  string          `json:"benchmark"`
	Objectives []ObjectiveSpec `json:"objectives"`
	SpaceSpec
	// Scope: see SweepRequest.Scope.
	Scope string `json:"scope,omitempty"`
}

// Validate rejects malformed frontier requests; shared by a worker's
// /pareto and a coordinator's /cluster/pareto.
func (r ParetoRequest) Validate() error {
	if err := validateObjectives(r.Objectives); err != nil {
		return err
	}
	return validateScope(r.Scope)
}

// ParetoResponse answers POST /pareto.
type ParetoResponse struct {
	Benchmark  string      `json:"benchmark"`
	Objectives []string    `json:"objectives"`
	Evaluated  int         `json:"evaluated"`
	ElapsedMS  float64     `json:"elapsed_ms"`
	Frontier   []Candidate `json:"frontier"`
}

// WarmRequest is the body of POST /warm: pre-train (or warm-start) every
// configured metric of the named benchmarks before the first sweep needs
// them — the admin hook a coordinator uses to place models on workers.
type WarmRequest struct {
	Benchmarks []string `json:"benchmarks"`
	// Scope: see SweepRequest.Scope.
	Scope string `json:"scope,omitempty"`
}

// MaxWarmBenchmarks bounds one warm request; warming is training, so the
// list stays small by construction.
const MaxWarmBenchmarks = 64

// Validate rejects malformed warm requests; shared by a worker's /warm
// and a coordinator's.
func (r WarmRequest) Validate() error {
	if len(r.Benchmarks) == 0 {
		return errors.New("warm needs a non-empty benchmark list")
	}
	if len(r.Benchmarks) > MaxWarmBenchmarks {
		return fmt.Errorf("warm accepts at most %d benchmarks (got %d)", MaxWarmBenchmarks, len(r.Benchmarks))
	}
	return validateScope(r.Scope)
}

// WarmResponse answers POST /warm.
type WarmResponse struct {
	Benchmarks []string `json:"benchmarks"`
	// Trainings counts the training runs this warm itself triggered
	// (already-warm benchmarks cost zero); a coordinator reports the sum
	// across its fleet.
	Trainings int     `json:"trainings"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// Errors lists per-worker failures of a partially successful
	// coordinator warm (the successful placements stand; a sweep would
	// re-dispatch around the failed workers).
	Errors []string `json:"errors,omitempty"`
}

// MaxInventoryBenchmarks bounds the trained-model inventory one register
// or heartbeat may advertise; a fleet member holding more models than
// this advertises its first MaxInventoryBenchmarks and still benefits
// from affinity for those.
const MaxInventoryBenchmarks = 256

// RegisterRequest is the body of POST /register: a worker joining the
// coordinator's fleet (or renewing its membership — re-registering is
// idempotent). Addr is how the coordinator reaches the worker, so it
// must be routable from the coordinator, not the worker's loopback view
// of itself.
type RegisterRequest struct {
	Addr string `json:"addr"`
	// Capacity is how many concurrent shards the worker wants at most
	// (0 = the coordinator's default).
	Capacity int `json:"capacity,omitempty"`
	// Benchmarks is the worker's trained-model inventory (benchmarks
	// with every served metric in memory); the scheduler routes those
	// benchmarks' shards to this worker first.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// QueueDepths maps benchmark name to the worker's currently running
	// job count for it — the load signal behind smarter spill decisions
	// (a worker drowning in one benchmark's jobs is a poor affinity
	// target even though it holds the models). Reported per heartbeat and
	// surfaced in the coordinator's /healthz.
	QueueDepths map[string]int `json:"queue_depths,omitempty"`
}

// Validate rejects malformed registrations before they touch the
// membership table.
func (r RegisterRequest) Validate() error {
	if r.Addr == "" {
		return errors.New("register needs a worker addr")
	}
	if !strings.Contains(r.Addr, ":") {
		return fmt.Errorf("worker addr %q is not host:port (or a URL)", r.Addr)
	}
	if r.Capacity < 0 {
		return fmt.Errorf("capacity %d is negative", r.Capacity)
	}
	if len(r.Benchmarks) > MaxInventoryBenchmarks {
		return fmt.Errorf("inventory lists %d benchmarks, at most %d are usable", len(r.Benchmarks), MaxInventoryBenchmarks)
	}
	for _, b := range r.Benchmarks {
		if b == "" || len(b) > 128 {
			return fmt.Errorf("inventory benchmark name %q is empty or oversized", b)
		}
	}
	if len(r.QueueDepths) > MaxInventoryBenchmarks {
		return fmt.Errorf("queue depths list %d benchmarks, at most %d are usable", len(r.QueueDepths), MaxInventoryBenchmarks)
	}
	for b, d := range r.QueueDepths {
		if b == "" || len(b) > 128 {
			return fmt.Errorf("queue-depth benchmark name %q is empty or oversized", b)
		}
		if d < 0 {
			return fmt.Errorf("queue depth %d for %q is negative", d, b)
		}
	}
	return nil
}

// RegisterResponse answers POST /register.
type RegisterResponse struct {
	// Worker is the canonical member name the coordinator filed the
	// worker under; heartbeats must use it.
	Worker string `json:"worker"`
	// Workers is the live fleet size after the join.
	Workers int `json:"workers"`
	// TTLSeconds is the membership lease: heartbeat again before it
	// lapses or be evicted.
	TTLSeconds float64 `json:"ttl_seconds"`
}

// HeartbeatRequest is the body of POST /heartbeat: a lease renewal
// carrying the worker's current inventory. The shape matches
// RegisterRequest so a worker builds both from the same state.
type HeartbeatRequest RegisterRequest

// Validate rejects malformed heartbeats.
func (r HeartbeatRequest) Validate() error { return RegisterRequest(r).Validate() }

// HeartbeatResponse answers POST /heartbeat. An unknown worker gets a
// 404 error envelope instead: it must re-register.
type HeartbeatResponse struct {
	Worker     string  `json:"worker"`
	Workers    int     `json:"workers"`
	TTLSeconds float64 `json:"ttl_seconds"`
}

// ClusterSweepResponse answers POST /cluster/sweep: a SweepResponse merged
// from per-shard worker answers, plus the distribution's accounting.
type ClusterSweepResponse struct {
	SweepResponse
	Workers int `json:"workers"`
	Shards  int `json:"shards"`
	// Retries counts shard attempts that failed and were re-dispatched.
	Retries int `json:"retries"`
	// JobID identifies the async job that computed this response, so
	// callers can fetch GET /v1/jobs/{id}/trace afterwards.
	JobID string `json:"job_id,omitempty"`
	// Spans carries the responding daemon's trace spans for the job —
	// the coordinator splices a worker's spans under its dispatch span.
	Spans []obs.Span `json:"spans,omitempty"`
}

// ClusterParetoResponse answers POST /cluster/pareto.
type ClusterParetoResponse struct {
	ParetoResponse
	Workers int        `json:"workers"`
	Shards  int        `json:"shards"`
	Retries int        `json:"retries"`
	JobID   string     `json:"job_id,omitempty"`
	Spans   []obs.Span `json:"spans,omitempty"`
}

// ObjectiveNames labels resolved objectives for a response.
func ObjectiveNames(objectives []explore.Objective) []string {
	names := make([]string, len(objectives))
	for i, o := range objectives {
		names[i] = o.Name
	}
	return names
}
