package simpoint

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/workload"
)

func TestCollectShapes(t *testing.T) {
	p, _ := workload.ProfileByName("gcc")
	gen := workload.MustNewGenerator(p)
	sigs, err := Collect(gen, 32768, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if len(sigs) != 16 {
		t.Fatalf("got %d signatures, want 16", len(sigs))
	}
	for i, s := range sigs {
		if len(s) != SignatureDim {
			t.Fatalf("signature %d has dim %d", i, len(s))
		}
		var sum float64
		for _, v := range s {
			if v < 0 {
				t.Fatalf("negative signature entry")
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("signature %d not L1-normalised: sum %v", i, sum)
		}
	}
}

func TestCollectValidation(t *testing.T) {
	p, _ := workload.ProfileByName("gcc")
	gen := workload.MustNewGenerator(p)
	if _, err := Collect(gen, 100, 0); err == nil {
		t.Error("zero interval should fail")
	}
	if _, err := Collect(gen, 10, 100); err == nil {
		t.Error("total below one interval should fail")
	}
}

// Synthetic clustering ground truth: three well-separated blobs.
func TestKMeansSeparatesBlobs(t *testing.T) {
	rng := mathx.NewRNG(3)
	var sigs []Signature
	truth := make([]int, 0, 90)
	centers := []float64{0, 10, 20}
	for c, base := range centers {
		for i := 0; i < 30; i++ {
			s := make(Signature, 4)
			for j := range s {
				s[j] = base + rng.Float64()
			}
			sigs = append(sigs, s)
			truth = append(truth, c)
		}
	}
	assign, centroids, err := KMeans(sigs, 3, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(centroids) != 3 {
		t.Fatalf("got %d centroids", len(centroids))
	}
	// Each true blob must map to exactly one cluster id.
	blobTo := map[int]int{}
	for i, a := range assign {
		if prev, ok := blobTo[truth[i]]; ok && prev != a {
			t.Fatalf("blob %d split across clusters", truth[i])
		}
		blobTo[truth[i]] = a
	}
	if len(blobTo) != 3 {
		t.Fatalf("blobs merged: %v", blobTo)
	}
}

func TestKMeansValidation(t *testing.T) {
	rng := mathx.NewRNG(1)
	if _, _, err := KMeans(nil, 2, rng, 0); err == nil {
		t.Error("empty input should fail")
	}
	sigs := []Signature{{1}, {2}}
	if _, _, err := KMeans(sigs, 3, rng, 0); err == nil {
		t.Error("k beyond n should fail")
	}
	if _, _, err := KMeans([]Signature{{1}, {1, 2}}, 1, rng, 0); err == nil {
		t.Error("ragged signatures should fail")
	}
}

func TestSelectWeightsSumToOne(t *testing.T) {
	p, _ := workload.ProfileByName("gcc")
	gen := workload.MustNewGenerator(p)
	sigs, err := Collect(gen, 65536, 1024)
	if err != nil {
		t.Fatal(err)
	}
	points, err := Select(sigs, 6, mathx.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 || len(points) > 6 {
		t.Fatalf("selected %d points", len(points))
	}
	var wsum float64
	prev := -1
	for _, pt := range points {
		if pt.Interval <= prev {
			t.Error("points not in ascending interval order")
		}
		prev = pt.Interval
		if pt.Interval < 0 || pt.Interval >= len(sigs) {
			t.Errorf("representative interval %d out of range", pt.Interval)
		}
		wsum += pt.Weight
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Errorf("weights sum to %v, want 1", wsum)
	}
}

// The headline SimPoint property: the weighted representative estimate of
// aggregate CPI beats a naive single-slice estimate.
func TestSimPointEstimateBeatsFirstSlice(t *testing.T) {
	p, _ := workload.ProfileByName("gap") // strongly phased
	gen := workload.MustNewGenerator(p)
	const (
		totalInstrs = 131072
		samples     = 64
	)
	sigs, err := Collect(gen, totalInstrs, totalInstrs/samples)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(space.Baseline(), "gap", sim.Options{Instructions: totalInstrs, Samples: samples})
	if err != nil {
		t.Fatal(err)
	}
	// Exclude the cold-start intervals from truth and candidates, as the
	// SimPoint methodology does with warmup.
	const warmup = 2
	warm := tr.CPI[warmup:]
	truth := mathx.Mean(warm)

	points, err := Select(sigs[warmup:], 6, mathx.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	est := EstimateAggregate(warm, points)
	naive := warm[0] // "just simulate one early slice"

	errEst := math.Abs(est-truth) / truth
	errNaive := math.Abs(naive-truth) / truth
	t.Logf("simpoint estimate %.4f vs truth %.4f (%.2f%% err); single-slice %.4f (%.2f%% err)",
		est, truth, 100*errEst, naive, 100*errNaive)
	if errEst >= errNaive {
		t.Errorf("simpoint estimate error %.4f should beat single-slice %.4f", errEst, errNaive)
	}
	if errEst > 0.10 {
		t.Errorf("simpoint estimate error %v too large", errEst)
	}
}

// Property: every interval is assigned to its nearest centroid after
// convergence.
func TestKMeansNearestAssignmentProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		n := 10 + rng.Intn(40)
		dim := 2 + rng.Intn(5)
		sigs := make([]Signature, n)
		for i := range sigs {
			sigs[i] = make(Signature, dim)
			for j := range sigs[i] {
				sigs[i][j] = rng.Float64()
			}
		}
		k := 1 + rng.Intn(4)
		assign, centroids, err := KMeans(sigs, k, rng, 0)
		if err != nil {
			return false
		}
		for i, s := range sigs {
			dAssigned := sqDist(s, centroids[assign[i]])
			for _, c := range centroids {
				if sqDist(s, c) < dAssigned-1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
