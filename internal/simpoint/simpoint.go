// Package simpoint implements the representative-slice selection the paper
// relies on for its workloads ("We use the Simpoint tool to pick the most
// representative simulation point for each benchmark", Section 3),
// following Sherwood et al. (ASPLOS 2002): execution is cut into fixed-size
// intervals, each summarised by a basic-block-vector-like code signature,
// the signatures are k-means clustered, and each cluster contributes one
// representative interval weighted by the cluster's share of execution.
package simpoint

import (
	"fmt"
	"math"

	"repro/internal/mathx"
	"repro/internal/workload"
)

// SignatureDim is the dimensionality of an interval signature: a hashed
// code-region histogram (the BBV analogue) concatenated with the op-class
// mix.
const SignatureDim = 64 + int(workload.NumOpClasses)

// Signature summarises one execution interval.
type Signature []float64

// Collect cuts the first totalInstrs instructions of a workload into
// intervals of intervalLen and returns one L1-normalised signature per
// interval. The generator is reset first.
func Collect(gen workload.Generator, totalInstrs, intervalLen int) ([]Signature, error) {
	if intervalLen <= 0 || totalInstrs < intervalLen {
		return nil, fmt.Errorf("simpoint: need totalInstrs ≥ intervalLen > 0, got %d/%d", totalInstrs, intervalLen)
	}
	gen.Reset()
	n := totalInstrs / intervalLen
	sigs := make([]Signature, 0, n)
	var inst workload.Inst
	for i := 0; i < n; i++ {
		sig := make(Signature, SignatureDim)
		for j := 0; j < intervalLen; j++ {
			gen.Next(&inst)
			// Hashed code-region bucket (BBV analogue).
			bucket := (inst.PC * 0x9E3779B97F4A7C15) >> 58 // top 6 bits
			sig[bucket]++
			sig[64+int(inst.Op)]++
		}
		// L1-normalise so intervals are comparable.
		for k := range sig {
			sig[k] /= float64(2 * intervalLen) // code + op halves each sum to intervalLen
		}
		sigs = append(sigs, sig)
	}
	return sigs, nil
}

func sqDist(a, b Signature) float64 {
	var d float64
	for i := range a {
		diff := a[i] - b[i]
		d += diff * diff
	}
	return d
}

// KMeans clusters signatures into k groups (k-means with deterministic
// seeding via the provided RNG, restarted assignment until convergence or
// maxIters). It returns per-signature cluster assignments and centroids.
func KMeans(sigs []Signature, k int, rng *mathx.RNG, maxIters int) (assign []int, centroids []Signature, err error) {
	if len(sigs) == 0 {
		return nil, nil, fmt.Errorf("simpoint: no signatures")
	}
	if k <= 0 || k > len(sigs) {
		return nil, nil, fmt.Errorf("simpoint: k=%d outside [1, %d]", k, len(sigs))
	}
	if maxIters <= 0 {
		maxIters = 50
	}
	dim := len(sigs[0])
	for _, s := range sigs {
		if len(s) != dim {
			return nil, nil, fmt.Errorf("simpoint: inconsistent signature dimensions")
		}
	}

	// k-means++ style seeding: first centroid random, then proportional to
	// squared distance.
	centroids = make([]Signature, 0, k)
	first := rng.Intn(len(sigs))
	centroids = append(centroids, append(Signature(nil), sigs[first]...))
	for len(centroids) < k {
		weights := make([]float64, len(sigs))
		var total float64
		for i, s := range sigs {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(s, c); d < best {
					best = d
				}
			}
			weights[i] = best
			total += best
		}
		if total == 0 {
			// All remaining points coincide with centroids; duplicate one.
			centroids = append(centroids, append(Signature(nil), sigs[rng.Intn(len(sigs))]...))
			continue
		}
		centroids = append(centroids, append(Signature(nil), sigs[rng.Pick(weights)]...))
	}

	assign = make([]int, len(sigs))
	for iter := 0; iter < maxIters; iter++ {
		changed := false
		for i, s := range sigs {
			best, bestD := 0, math.Inf(1)
			for ci, c := range centroids {
				if d := sqDist(s, c); d < bestD {
					best, bestD = ci, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		counts := make([]int, k)
		next := make([]Signature, k)
		for ci := range next {
			next[ci] = make(Signature, dim)
		}
		for i, s := range sigs {
			ci := assign[i]
			counts[ci]++
			for j, v := range s {
				next[ci][j] += v
			}
		}
		for ci := range next {
			if counts[ci] == 0 {
				// Empty cluster: reseed at the farthest point.
				far, farD := 0, -1.0
				for i, s := range sigs {
					if d := sqDist(s, centroids[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				copy(next[ci], sigs[far])
				continue
			}
			for j := range next[ci] {
				next[ci][j] /= float64(counts[ci])
			}
		}
		centroids = next
	}
	return assign, centroids, nil
}

// Point is one selected simulation point.
type Point struct {
	// Interval is the index of the representative interval.
	Interval int
	// Weight is the fraction of execution its cluster covers.
	Weight float64
}

// Select runs the full SimPoint pipeline: cluster the signatures into k
// phases and pick, per cluster, the interval closest to the centroid.
// Points are returned in interval order with weights summing to 1.
func Select(sigs []Signature, k int, rng *mathx.RNG) ([]Point, error) {
	assign, centroids, err := KMeans(sigs, k, rng, 0)
	if err != nil {
		return nil, err
	}
	counts := make([]int, k)
	repIdx := make([]int, k)
	repDist := make([]float64, k)
	for ci := range repDist {
		repDist[ci] = math.Inf(1)
		repIdx[ci] = -1
	}
	for i, s := range sigs {
		ci := assign[i]
		counts[ci]++
		if d := sqDist(s, centroids[ci]); d < repDist[ci] {
			repDist[ci] = d
			repIdx[ci] = i
		}
	}
	var points []Point
	for ci := 0; ci < k; ci++ {
		if counts[ci] == 0 {
			continue
		}
		points = append(points, Point{
			Interval: repIdx[ci],
			Weight:   float64(counts[ci]) / float64(len(sigs)),
		})
	}
	// Interval order for reproducible reporting.
	for i := 1; i < len(points); i++ {
		for j := i; j > 0 && points[j].Interval < points[j-1].Interval; j-- {
			points[j], points[j-1] = points[j-1], points[j]
		}
	}
	return points, nil
}

// EstimateAggregate combines per-interval metric values using the selected
// points' weights — the SimPoint estimate of whole-run behaviour from
// representative slices only.
func EstimateAggregate(perInterval []float64, points []Point) float64 {
	var est float64
	for _, p := range points {
		est += p.Weight * perInterval[p.Interval]
	}
	return est
}
