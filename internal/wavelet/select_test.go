package wavelet

import (
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func TestTopKByMagnitude(t *testing.T) {
	coeffs := []float64{1, -9, 3, 0.5, -3}
	got := TopKByMagnitude(coeffs, 3)
	// |−9| > |3| == |−3| (tie → lower index) > |1|.
	want := []int{1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("TopK = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("TopK[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestTopKClampsK(t *testing.T) {
	coeffs := []float64{1, 2}
	if got := TopKByMagnitude(coeffs, 10); len(got) != 2 {
		t.Errorf("k beyond len should clamp: %v", got)
	}
	if got := TopKByMagnitude(coeffs, -1); len(got) != 0 {
		t.Errorf("negative k should clamp to 0: %v", got)
	}
}

func TestFirstK(t *testing.T) {
	got := FirstK(5, 3)
	for i, v := range got {
		if v != i {
			t.Errorf("FirstK[%d] = %d, want %d", i, v, i)
		}
	}
	if len(FirstK(2, 9)) != 2 {
		t.Error("FirstK should clamp k to n")
	}
}

func TestKeepZeroesOthers(t *testing.T) {
	coeffs := []float64{5, 6, 7, 8}
	kept := Keep(coeffs, []int{0, 2})
	want := []float64{5, 0, 7, 0}
	for i := range want {
		if kept[i] != want[i] {
			t.Errorf("Keep[%d] = %v, want %v", i, kept[i], want[i])
		}
	}
	// Out-of-range indices are ignored.
	kept = Keep(coeffs, []int{-1, 99})
	for i, v := range kept {
		if v != 0 {
			t.Errorf("Keep with invalid indices[%d] = %v, want 0", i, v)
		}
	}
}

func TestMagnitudeRanks(t *testing.T) {
	coeffs := []float64{0.5, -9, 3}
	ranks := MagnitudeRanks(coeffs)
	want := []int{3, 1, 2}
	for i := range want {
		if ranks[i] != want[i] {
			t.Errorf("rank[%d] = %d, want %d", i, ranks[i], want[i])
		}
	}
}

func TestEnergyFraction(t *testing.T) {
	coeffs := []float64{3, 4} // energies 9, 16; total 25
	if got := EnergyFraction(coeffs, []int{1}); got != 16.0/25.0 {
		t.Errorf("EnergyFraction = %v, want 0.64", got)
	}
	if got := EnergyFraction(coeffs, []int{1, 1}); got != 16.0/25.0 {
		t.Errorf("duplicate indices double-counted: %v", got)
	}
	if got := EnergyFraction([]float64{0, 0}, nil); got != 1 {
		t.Errorf("all-zero series = %v, want 1", got)
	}
}

// Property: magnitude-based selection captures at least as much energy as
// order-based selection for the same k — the reason the paper adopts it.
func TestMagnitudeBeatsOrderEnergyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		n := 1 << (2 + rng.Intn(6))
		coeffs := make([]float64, n)
		for i := range coeffs {
			coeffs[i] = rng.Float64()*10 - 5
		}
		k := 1 + rng.Intn(n)
		mag := EnergyFraction(coeffs, TopKByMagnitude(coeffs, k))
		ord := EnergyFraction(coeffs, FirstK(n, k))
		return mag >= ord-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: ranks are a permutation of 1..n.
func TestMagnitudeRanksPermutationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		n := 1 + rng.Intn(50)
		coeffs := make([]float64, n)
		for i := range coeffs {
			coeffs[i] = rng.Float64()
		}
		ranks := MagnitudeRanks(coeffs)
		seen := make([]bool, n+1)
		for _, r := range ranks {
			if r < 1 || r > n || seen[r] {
				return false
			}
			seen[r] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
