package wavelet

// Haar is the paper's Haar transform in average/difference form: at each
// scale, approximation a[i] = (x[2i]+x[2i+1])/2 and detail
// d[i] = (x[2i]-x[2i+1])/2 (Figure 2). It is perfectly invertible but not
// orthonormal (coefficient energy is not preserved).
type Haar struct{}

// Name implements Transform.
func (Haar) Name() string { return "haar" }

// MinLength implements Transform.
func (Haar) MinLength() int { return 1 }

// Decompose implements Transform. Coefficients are laid out
// [average, coarsest detail, ..., finest details].
func (Haar) Decompose(data []float64) ([]float64, error) {
	if err := checkLength("haar", len(data), 1); err != nil {
		return nil, err
	}
	n := len(data)
	out := make([]float64, n)
	approx := make([]float64, n)
	copy(approx, data)
	// Fill details from the back (finest scale occupies the last n/2 slots).
	for length := n; length > 1; length /= 2 {
		half := length / 2
		details := out[half:length]
		for i := 0; i < half; i++ {
			a, b := approx[2*i], approx[2*i+1]
			approx[i] = (a + b) / 2
			details[i] = (a - b) / 2
		}
	}
	out[0] = approx[0]
	return out, nil
}

// Reconstruct implements Transform.
func (Haar) Reconstruct(coeffs []float64) ([]float64, error) {
	if err := checkLength("haar", len(coeffs), 1); err != nil {
		return nil, err
	}
	n := len(coeffs)
	data := make([]float64, n)
	data[0] = coeffs[0]
	tmp := make([]float64, n)
	for length := 1; length < n; length *= 2 {
		details := coeffs[length : 2*length]
		for i := 0; i < length; i++ {
			tmp[2*i] = data[i] + details[i]
			tmp[2*i+1] = data[i] - details[i]
		}
		copy(data[:2*length], tmp[:2*length])
	}
	return data, nil
}

// HaarOrthonormal is the energy-preserving Haar transform:
// a[i] = (x[2i]+x[2i+1])/√2, d[i] = (x[2i]-x[2i+1])/√2.
type HaarOrthonormal struct{}

// Name implements Transform.
func (HaarOrthonormal) Name() string { return "haar-orthonormal" }

// MinLength implements Transform.
func (HaarOrthonormal) MinLength() int { return 1 }

const sqrt2 = 1.41421356237309504880168872420969808

// Decompose implements Transform.
func (HaarOrthonormal) Decompose(data []float64) ([]float64, error) {
	if err := checkLength("haar-orthonormal", len(data), 1); err != nil {
		return nil, err
	}
	n := len(data)
	out := make([]float64, n)
	approx := make([]float64, n)
	copy(approx, data)
	for length := n; length > 1; length /= 2 {
		half := length / 2
		details := out[half:length]
		for i := 0; i < half; i++ {
			a, b := approx[2*i], approx[2*i+1]
			approx[i] = (a + b) / sqrt2
			details[i] = (a - b) / sqrt2
		}
	}
	out[0] = approx[0]
	return out, nil
}

// Reconstruct implements Transform.
func (HaarOrthonormal) Reconstruct(coeffs []float64) ([]float64, error) {
	if err := checkLength("haar-orthonormal", len(coeffs), 1); err != nil {
		return nil, err
	}
	n := len(coeffs)
	data := make([]float64, n)
	data[0] = coeffs[0]
	tmp := make([]float64, n)
	for length := 1; length < n; length *= 2 {
		details := coeffs[length : 2*length]
		for i := 0; i < length; i++ {
			tmp[2*i] = (data[i] + details[i]) / sqrt2
			tmp[2*i+1] = (data[i] - details[i]) / sqrt2
		}
		copy(data[:2*length], tmp[:2*length])
	}
	return data, nil
}
