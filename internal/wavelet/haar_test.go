package wavelet

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

// TestHaarPaperExample reproduces Figure 2 of the paper exactly:
// {3,4,20,25,15,5,20,3} decomposes to
// [11.875, 1.125, -9.5, -0.75, -0.5, -2.5, 5, 8.5].
func TestHaarPaperExample(t *testing.T) {
	data := []float64{3, 4, 20, 25, 15, 5, 20, 3}
	coeffs, err := Haar{}.Decompose(data)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{11.875, 1.125, -9.5, -0.75, -0.5, -2.5, 5, 8.5}
	for i := range want {
		if math.Abs(coeffs[i]-want[i]) > 1e-12 {
			t.Errorf("coeff[%d] = %v, want %v", i, coeffs[i], want[i])
		}
	}
}

func TestHaarPaperExamplePartialReconstruction(t *testing.T) {
	// The paper notes {13, 10.75} = {11.875+1.125, 11.875-1.125}: keeping
	// only the first two coefficients reconstructs the scale-2
	// approximation broadcast to full length.
	data := []float64{3, 4, 20, 25, 15, 5, 20, 3}
	coeffs, err := Haar{}.Decompose(data)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := Haar{}.Reconstruct(Keep(coeffs, FirstK(len(coeffs), 2)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if math.Abs(approx[i]-13) > 1e-12 {
			t.Errorf("approx[%d] = %v, want 13", i, approx[i])
		}
	}
	for i := 4; i < 8; i++ {
		if math.Abs(approx[i]-10.75) > 1e-12 {
			t.Errorf("approx[%d] = %v, want 10.75", i, approx[i])
		}
	}
}

func TestHaarFirstCoefficientIsMean(t *testing.T) {
	rng := mathx.NewRNG(5)
	data := make([]float64, 64)
	for i := range data {
		data[i] = rng.Float64() * 10
	}
	coeffs, err := Haar{}.Decompose(data)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coeffs[0]-mathx.Mean(data)) > 1e-9 {
		t.Errorf("coeff[0] = %v, want mean %v", coeffs[0], mathx.Mean(data))
	}
}

func TestHaarRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, 3, 6, 100} {
		if _, err := (Haar{}).Decompose(make([]float64, n)); err == nil {
			t.Errorf("Decompose(len %d) should fail", n)
		}
		if n > 0 {
			if _, err := (Haar{}).Reconstruct(make([]float64, n)); err == nil {
				t.Errorf("Reconstruct(len %d) should fail", n)
			}
		}
	}
}

func TestHaarLengthOne(t *testing.T) {
	coeffs, err := Haar{}.Decompose([]float64{42})
	if err != nil {
		t.Fatal(err)
	}
	if coeffs[0] != 42 {
		t.Errorf("coeff = %v, want 42", coeffs)
	}
	back, err := Haar{}.Reconstruct(coeffs)
	if err != nil || back[0] != 42 {
		t.Errorf("reconstruct = %v (%v), want 42", back, err)
	}
}

func perfectReconstruction(t *testing.T, tr Transform, maxLen int) {
	t.Helper()
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		n := tr.MinLength()
		for n < maxLen && rng.Float64() < 0.6 {
			n *= 2
		}
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.Float64()*200 - 100
		}
		coeffs, err := tr.Decompose(data)
		if err != nil {
			return false
		}
		back, err := tr.Reconstruct(coeffs)
		if err != nil {
			return false
		}
		for i := range data {
			if math.Abs(back[i]-data[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property (paper §2.1): "the original data can be perfectly recovered if
// all wavelet coefficients are involved."
func TestHaarPerfectReconstructionProperty(t *testing.T) {
	perfectReconstruction(t, Haar{}, 512)
}

func TestHaarOrthonormalPerfectReconstructionProperty(t *testing.T) {
	perfectReconstruction(t, HaarOrthonormal{}, 512)
}

// Property: the orthonormal Haar preserves energy (Parseval).
func TestHaarOrthonormalEnergyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		n := 1 << (1 + rng.Intn(8))
		data := make([]float64, n)
		var e1 float64
		for i := range data {
			data[i] = rng.Float64()*20 - 10
			e1 += data[i] * data[i]
		}
		coeffs, err := HaarOrthonormal{}.Decompose(data)
		if err != nil {
			return false
		}
		var e2 float64
		for _, c := range coeffs {
			e2 += c * c
		}
		return math.Abs(e1-e2) < 1e-6*(1+e1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Haar transform is linear.
func TestHaarLinearityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		n := 1 << (1 + rng.Intn(6))
		a := make([]float64, n)
		b := make([]float64, n)
		sum := make([]float64, n)
		for i := range a {
			a[i] = rng.Float64()*10 - 5
			b[i] = rng.Float64()*10 - 5
			sum[i] = 2*a[i] + 3*b[i]
		}
		ca, _ := Haar{}.Decompose(a)
		cb, _ := Haar{}.Decompose(b)
		cs, _ := Haar{}.Decompose(sum)
		for i := range cs {
			if math.Abs(cs[i]-(2*ca[i]+3*cb[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Reconstruction error must shrink monotonically (weakly) as more
// magnitude-ranked coefficients are kept, reaching zero with all of them —
// the Figure 4 progression.
func TestHaarProgressiveApproximation(t *testing.T) {
	rng := mathx.NewRNG(99)
	data := make([]float64, 64)
	for i := range data {
		data[i] = math.Sin(float64(i)/5)*3 + rng.Float64()
	}
	coeffs, err := Haar{}.Decompose(data)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, k := range []int{1, 2, 4, 8, 16, 64} {
		approx, err := Haar{}.Reconstruct(Keep(coeffs, TopKByMagnitude(coeffs, k)))
		if err != nil {
			t.Fatal(err)
		}
		mse := mathx.MSE(data, approx)
		if mse > prev+1e-12 {
			t.Errorf("MSE with k=%d (%v) exceeds previous (%v)", k, mse, prev)
		}
		prev = mse
	}
	if prev > 1e-18 {
		t.Errorf("full reconstruction MSE = %v, want 0", prev)
	}
}
