// Package wavelet implements the discrete wavelet transforms and
// coefficient-selection schemes used by the workload-dynamics predictor.
//
// The paper (Section 2.1, Figure 2) uses the Haar transform in its
// average/difference form: at each scale the approximation is the pairwise
// mean and the detail is half the pairwise difference. Decomposed
// coefficients are laid out as
//
//	[overall average, detail(coarsest), ..., detail(finest)]
//
// so that index 0 carries the global mean of the series and increasing
// indices carry increasingly local behaviour. An orthonormal Haar and a
// Daubechies-4 transform are provided as drop-in alternatives.
package wavelet

import (
	"fmt"
	"sort"
)

// Transform is a two-way discrete wavelet transform over power-of-two-length
// series.
type Transform interface {
	// Name identifies the transform (e.g. "haar").
	Name() string
	// Decompose returns the full set of wavelet coefficients for data.
	// len(data) must be a power of two and at least MinLength().
	Decompose(data []float64) ([]float64, error)
	// Reconstruct inverts Decompose. len(coeffs) must be a power of two.
	Reconstruct(coeffs []float64) ([]float64, error)
	// MinLength is the shortest series the transform accepts.
	MinLength() int
}

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

func checkLength(name string, n, min int) error {
	if !IsPowerOfTwo(n) {
		return fmt.Errorf("wavelet: %s requires power-of-two length, got %d", name, n)
	}
	if n < min {
		return fmt.Errorf("wavelet: %s requires length ≥ %d, got %d", name, min, n)
	}
	return nil
}

// TopKByMagnitude returns the indices of the k largest-magnitude
// coefficients, in descending magnitude order (ties broken by lower index).
// This is the paper's "magnitude-based" selection scheme.
func TopKByMagnitude(coeffs []float64, k int) []int {
	if k > len(coeffs) {
		k = len(coeffs)
	}
	if k < 0 {
		k = 0
	}
	idx := make([]int, len(coeffs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ma, mb := abs(coeffs[idx[a]]), abs(coeffs[idx[b]])
		if ma != mb {
			return ma > mb
		}
		return idx[a] < idx[b]
	})
	out := make([]int, k)
	copy(out, idx[:k])
	return out
}

// FirstK returns the indices 0..k-1, the paper's "order-based" selection
// scheme (coarsest scales first given the coefficient layout).
func FirstK(n, k int) []int {
	if k > n {
		k = n
	}
	if k < 0 {
		k = 0
	}
	out := make([]int, k)
	for i := range out {
		out[i] = i
	}
	return out
}

// Keep returns a copy of coeffs with every position not listed in indices
// zeroed — the sparse approximation used before inverse transforming.
func Keep(coeffs []float64, indices []int) []float64 {
	out := make([]float64, len(coeffs))
	for _, i := range indices {
		if i >= 0 && i < len(coeffs) {
			out[i] = coeffs[i]
		}
	}
	return out
}

// MagnitudeRanks returns, for each coefficient position, its 1-based rank by
// descending magnitude (rank 1 = largest). Used to reproduce the Figure 7
// rank-stability map.
func MagnitudeRanks(coeffs []float64) []int {
	order := TopKByMagnitude(coeffs, len(coeffs))
	ranks := make([]int, len(coeffs))
	for rank, idx := range order {
		ranks[idx] = rank + 1
	}
	return ranks
}

// EnergyFraction returns the share of total squared-coefficient energy
// captured by the listed coefficient positions. Returns 1 for an all-zero
// series.
func EnergyFraction(coeffs []float64, indices []int) float64 {
	var total float64
	for _, c := range coeffs {
		total += c * c
	}
	if total == 0 {
		return 1
	}
	var kept float64
	seen := make(map[int]bool, len(indices))
	for _, i := range indices {
		if i < 0 || i >= len(coeffs) || seen[i] {
			continue
		}
		seen[i] = true
		kept += coeffs[i] * coeffs[i]
	}
	return kept / total
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
