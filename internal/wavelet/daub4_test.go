package wavelet

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func TestDaub4PerfectReconstructionProperty(t *testing.T) {
	perfectReconstruction(t, Daubechies4{}, 512)
}

func TestDaub4EnergyPreservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		n := 1 << (2 + rng.Intn(7))
		data := make([]float64, n)
		var e1 float64
		for i := range data {
			data[i] = rng.Float64()*20 - 10
			e1 += data[i] * data[i]
		}
		coeffs, err := Daubechies4{}.Decompose(data)
		if err != nil {
			return false
		}
		var e2 float64
		for _, c := range coeffs {
			e2 += c * c
		}
		return math.Abs(e1-e2) < 1e-6*(1+e1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDaub4RejectsShortInput(t *testing.T) {
	if _, err := (Daubechies4{}).Decompose([]float64{1, 2}); err == nil {
		t.Error("Decompose(len 2) should fail for daub4")
	}
	if _, err := (Daubechies4{}).Decompose(make([]float64, 12)); err == nil {
		t.Error("Decompose(len 12) should fail (not a power of two)")
	}
}

// A linear ramp is reproduced exactly by D4's two vanishing moments: all
// detail coefficients at interior positions vanish (periodic wrap affects
// only boundary-adjacent ones).
func TestDaub4KillsLinearRampDetails(t *testing.T) {
	n := 64
	data := make([]float64, n)
	for i := range data {
		data[i] = 2*float64(i) + 1
	}
	coeffs, err := Daubechies4{}.Decompose(data)
	if err != nil {
		t.Fatal(err)
	}
	// Finest-scale details live in coeffs[n/2:]. Away from the periodic
	// seam (last two positions of the block), they must be ~0.
	fine := coeffs[n/2:]
	for i := 0; i < len(fine)-2; i++ {
		if math.Abs(fine[i]) > 1e-9 {
			t.Errorf("fine detail[%d] = %v, want 0 for linear ramp", i, fine[i])
		}
	}
}

func TestDaub4FilterOrthogonality(t *testing.T) {
	// Scaling filter has unit norm and is orthogonal to the wavelet filter.
	h := []float64{d4h0, d4h1, d4h2, d4h3}
	g := []float64{d4h3, -d4h2, d4h1, -d4h0}
	var hh, hg float64
	for i := range h {
		hh += h[i] * h[i]
		hg += h[i] * g[i]
	}
	if math.Abs(hh-1) > 1e-12 {
		t.Errorf("‖h‖² = %v, want 1", hh)
	}
	if math.Abs(hg) > 1e-12 {
		t.Errorf("h·g = %v, want 0", hg)
	}
}
