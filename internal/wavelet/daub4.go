package wavelet

import "math"

// Daubechies4 is the orthonormal Daubechies wavelet with two vanishing
// moments (D4), using periodic boundary handling. It is provided as an
// alternative analysing wavelet to study sensitivity of the predictor to the
// mother-wavelet choice (the paper notes wavelet analysis "allows one to
// choose the pair of scaling and wavelet filters from numerous functions").
type Daubechies4 struct{}

// Name implements Transform.
func (Daubechies4) Name() string { return "daub4" }

// MinLength implements Transform.
func (Daubechies4) MinLength() int { return 4 }

var (
	d4h0 = (1 + math.Sqrt(3)) / (4 * math.Sqrt(2))
	d4h1 = (3 + math.Sqrt(3)) / (4 * math.Sqrt(2))
	d4h2 = (3 - math.Sqrt(3)) / (4 * math.Sqrt(2))
	d4h3 = (1 - math.Sqrt(3)) / (4 * math.Sqrt(2))
)

// Decompose implements Transform. The multiresolution recursion stops when
// the approximation length reaches 2, so the layout is
// [a0, a1, detail(coarsest)..., ..., detail(finest)...].
func (Daubechies4) Decompose(data []float64) ([]float64, error) {
	if err := checkLength("daub4", len(data), 4); err != nil {
		return nil, err
	}
	n := len(data)
	out := make([]float64, n)
	approx := make([]float64, n)
	copy(approx, data)
	for length := n; length >= 4; length /= 2 {
		half := length / 2
		s := make([]float64, half)
		d := out[half:length]
		for i := 0; i < half; i++ {
			j := 2 * i
			x0 := approx[j]
			x1 := approx[(j+1)%length]
			x2 := approx[(j+2)%length]
			x3 := approx[(j+3)%length]
			s[i] = d4h0*x0 + d4h1*x1 + d4h2*x2 + d4h3*x3
			d[i] = d4h3*x0 - d4h2*x1 + d4h1*x2 - d4h0*x3
		}
		copy(approx[:half], s)
	}
	out[0], out[1] = approx[0], approx[1]
	return out, nil
}

// Reconstruct implements Transform. Because the stage transform is
// orthonormal, the stage inverse is its transpose, applied as a scatter.
func (Daubechies4) Reconstruct(coeffs []float64) ([]float64, error) {
	if err := checkLength("daub4", len(coeffs), 4); err != nil {
		return nil, err
	}
	n := len(coeffs)
	data := make([]float64, n)
	data[0], data[1] = coeffs[0], coeffs[1]
	for length := 4; length <= n; length *= 2 {
		half := length / 2
		s := make([]float64, half)
		copy(s, data[:half])
		d := coeffs[half:length]
		x := make([]float64, length)
		for i := 0; i < half; i++ {
			j := 2 * i
			si, di := s[i], d[i]
			x[j] += d4h0*si + d4h3*di
			x[(j+1)%length] += d4h1*si - d4h2*di
			x[(j+2)%length] += d4h2*si + d4h1*di
			x[(j+3)%length] += d4h3*si - d4h0*di
		}
		copy(data[:length], x)
	}
	return data, nil
}
