// Quickstart: train a wavelet neural network on one benchmark and predict
// its workload dynamics at unseen design points.
//
// This walks the full Figure 6 pipeline in ~40 lines of API use:
//
//  1. sample training designs with Latin Hypercube Sampling,
//  2. run the cycle-level simulator to collect CPI dynamics traces,
//  3. train the per-coefficient RBF networks,
//  4. predict the trace at test designs and measure MSE%.
//
// Run: go run ./examples/quickstart
//
// With -daemon the prediction step is served by a dsed daemon through
// the typed /v1 client instead of a locally trained model (the daemon
// trains gcc on demand); simulation still runs locally as ground truth.
//
//	go run ./cmd/dsed -addr :8090 &
//	go run ./examples/quickstart -daemon localhost:8090
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stats"
	"repro/internal/wire"
	"repro/pkg/dsedclient"
)

func main() {
	daemon := flag.String("daemon", "", "predict through the dsed daemon at this address instead of training locally")
	flag.Parse()

	// Simulations run on the pooled, cancellable engine: ^C aborts the
	// campaign cleanly instead of orphaning workers.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	const benchmark = "gcc"
	rng := mathx.NewRNG(1)

	// 1. Designs: 40 training points via best-of-10 LHS, 6 test points
	//    drawn from the disjoint Table 2 test levels.
	train := space.SampleDesign(40, space.TrainLevels(), space.Baseline(), 10, rng)
	test := space.Random(6, space.TestLevels(), space.Baseline(), rng)

	// 2. Simulate: 64-sample CPI traces for every design.
	opts := sim.Options{Instructions: 131072, Samples: 64}
	var jobs []sim.Job
	for _, cfg := range append(append([]space.Config{}, train...), test...) {
		jobs = append(jobs, sim.Job{Config: cfg, Benchmark: benchmark})
	}
	fmt.Printf("simulating %d design points of %s...\n", len(jobs), benchmark)
	traces, err := sim.SweepContext(ctx, jobs, opts, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Served variant: the daemon owns the model (training gcc on demand
	// on first request); this process only simulates the ground truth.
	if *daemon != "" {
		c := dsedclient.New(*daemon)
		fmt.Printf("predicting through %s (the daemon trains on demand)...\n\n", *daemon)
		for i, cfg := range test {
			actual := traces[len(train)+i].CPI
			resp, err := c.Predict(ctx, wire.PredictRequest{
				Benchmark: benchmark, Metric: "CPI", Config: wire.SpecFromConfig(cfg),
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("test design %d: %v\n", i+1, cfg)
			fmt.Printf("  actual    %s\n", stats.Sparkline(actual))
			fmt.Printf("  predicted %s   (daemon's model, its own training campaign)\n",
				stats.Sparkline(resp.Trace))
		}
		return
	}

	// 3. Train the wavelet neural network on the training traces.
	trainTraces := make([][]float64, len(train))
	for i := range train {
		trainTraces[i] = traces[i].CPI
	}
	model, err := core.Train(train, trainTraces, core.Options{NumCoefficients: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d RBF networks on coefficients %v\n\n",
		model.NumNetworks(), model.SelectedCoefficients())

	// 4. Predict at unseen designs and compare against simulation.
	for i, cfg := range test {
		actual := traces[len(train)+i].CPI
		predicted := model.Predict(cfg)
		fmt.Printf("test design %d: %v\n", i+1, cfg)
		fmt.Printf("  actual    %s\n", stats.Sparkline(actual))
		fmt.Printf("  predicted %s   MSE %.2f%%\n",
			stats.Sparkline(predicted), mathx.RelativeMSEPercent(actual, predicted))
	}
}
