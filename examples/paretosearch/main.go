// paretosearch demonstrates the paper's end goal — *informed* design space
// exploration. After training on a few dozen simulated design points, the
// model sweeps thousands of candidate designs in milliseconds, extracts
// the CPI/power Pareto frontier, answers a constrained design question
// ("fastest machine whose worst-case power stays under budget"), and
// validates the chosen design against detailed simulation.
//
// Run: go run ./examples/paretosearch
//
// With -daemon the whole exploration runs through a dsed daemon (or
// coordinator fleet) over the versioned /v1 job API instead of training
// locally: the frontier job streams partial frontiers while it sweeps,
// and the constrained question is a top-K job. Validation still runs the
// detailed simulator locally.
//
//	go run ./cmd/dsed -addr :8090 &
//	go run ./examples/paretosearch -daemon localhost:8090
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/mathx"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/wire"
	"repro/pkg/dsedclient"
)

const benchmark = "twolf"

const powerBudget = 60.0

func main() {
	daemon := flag.String("daemon", "", "explore through the dsed daemon at this address (/v1 job API) instead of training locally")
	flag.Parse()

	// Both the training simulations and the model sweep run on the
	// pooled, cancellable engine: ^C aborts cleanly mid-campaign.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *daemon != "" {
		runDaemon(ctx, *daemon)
		return
	}
	runLocal(ctx)
}

// runDaemon is the served path: every model-driven step goes through the
// typed client — one way to speak to a daemon, no hand-rolled JSON.
func runDaemon(ctx context.Context, addr string) {
	c := dsedclient.New(addr)
	fmt.Printf("warming %s on %s...\n", benchmark, addr)
	if _, err := c.Warm(ctx, []string{benchmark}); err != nil {
		log.Fatal(err)
	}

	// The frontier as an async job: partial frontiers stream back while
	// the daemon (or its fleet) sweeps.
	req := wire.ParetoRequest{
		Benchmark: benchmark,
		Objectives: []wire.ObjectiveSpec{
			{Metric: "CPI"},
			{Metric: "Power", Kind: "worst"},
		},
		SpaceSpec: wire.SpaceSpec{Space: "train", Sample: 20000, Seed: 11},
	}
	partials := 0
	resp, err := c.ParetoJob(ctx, req, func(u api.Update) {
		if u.Final {
			return
		}
		partials++
		fmt.Printf("partial: evaluated %d/%d, frontier %d points\n",
			u.Evaluated, u.Designs, len(u.Candidates))
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal frontier after %d partial updates: %d of %d designs in %.0fms\n",
		partials, len(resp.Frontier), resp.Evaluated, resp.ElapsedMS)
	for _, cand := range resp.Frontier {
		fmt.Printf("  cpi=%.4f peak-power=%.4f | %v\n", cand.Scores[0], cand.Scores[1], cand.Config.ToConfig())
	}

	// The constrained design question as a top-K job.
	sweep, err := c.SweepJob(ctx, wire.SweepRequest{
		Benchmark:   benchmark,
		Objectives:  req.Objectives,
		SpaceSpec:   req.SpaceSpec,
		TopK:        1,
		Constraints: []wire.Constraint{{Objective: 1, Max: powerBudget}},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	if len(sweep.Candidates) == 0 {
		log.Fatalf("no design meets the %.0fW worst-case budget", powerBudget)
	}
	best := sweep.Candidates[0]
	cfg := best.Config.ToConfig()
	fmt.Printf("\nfastest design with predicted worst-case power ≤ %.0fW (%d of %d feasible):\n  %v\n",
		powerBudget, sweep.Feasible, sweep.Evaluated, cfg)
	fmt.Printf("  predicted: mean CPI %.3f, peak power %.1fW\n", best.Scores[0], best.Scores[1])
	validate(cfg)
}

func runLocal(ctx context.Context) {
	rng := mathx.NewRNG(11)
	opts := sim.Options{Instructions: 65536, Samples: 64}

	// Train CPI and power models from 40 simulated designs.
	train := space.SampleDesign(40, space.TrainLevels(), space.Baseline(), 10, rng)
	jobs := make([]sim.Job, len(train))
	for i, cfg := range train {
		jobs[i] = sim.Job{Config: cfg, Benchmark: benchmark}
	}
	fmt.Printf("simulating %d training designs of %s...\n", len(train), benchmark)
	traces, err := sim.SweepContext(ctx, jobs, opts, 0)
	if err != nil {
		log.Fatal(err)
	}
	cpiTraces := make([][]float64, len(train))
	powTraces := make([][]float64, len(train))
	for i, tr := range traces {
		cpiTraces[i] = tr.CPI
		powTraces[i] = tr.Power
	}
	mOpts := core.Options{NumCoefficients: 16}
	cpiModel, err := core.Train(train, cpiTraces, mOpts)
	if err != nil {
		log.Fatal(err)
	}
	powModel, err := core.Train(train, powTraces, mOpts)
	if err != nil {
		log.Fatal(err)
	}

	// Sweep the ENTIRE factorial training space (245,760 designs) through
	// the models on all cores, streaming candidates into a Pareto-frontier
	// collector and a constrained top-K selector so nothing but the
	// answers stays alive.
	designs := space.TrainLevels().FullFactorial(space.Baseline())
	models := []core.DynamicsModel{cpiModel, powModel}
	objectives := []explore.Objective{
		explore.MeanObjective("cpi"),
		explore.WorstCaseObjective("peak-power"),
	}
	frontier := explore.NewFrontierCollector()
	top := explore.NewTopK(1, 0, []explore.Constraint{{Objective: 1, Max: powerBudget}})
	start := time.Now()
	err = explore.SweepStream(ctx, designs, models, objectives,
		explore.Options{}, frontier, top)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("swept %d designs through the models on %d workers in %v (%.0f designs/sec)\n\n",
		len(designs), runtime.GOMAXPROCS(0), elapsed.Round(time.Millisecond),
		float64(len(designs))/elapsed.Seconds())

	// Show the frontier.
	front := frontier.Frontier()
	fmt.Printf("Pareto frontier has %d of %d designs:\n", len(front), frontier.Seen())
	for _, c := range front {
		fmt.Printf("  cpi=%.4f peak-power=%.4f | %v\n", c.Scores[0], c.Scores[1], c.Config)
	}
	fmt.Println()

	// The constrained design question, answered by the streaming top-K.
	bests := top.Results()
	if len(bests) == 0 {
		log.Fatalf("no design meets the %.0fW worst-case budget", powerBudget)
	}
	best := bests[0]
	fmt.Printf("fastest design with predicted worst-case power ≤ %.0fW (%d of %d feasible):\n  %v\n",
		powerBudget, top.Feasible(), top.Seen(), best.Config)
	fmt.Printf("  predicted: mean CPI %.3f, peak power %.1fW\n", best.Scores[0], best.Scores[1])
	validate(best.Config)
}

// validate checks the model's pick with detailed simulation.
func validate(cfg space.Config) {
	tr, err := sim.Run(cfg, benchmark, sim.Options{Instructions: 65536, Samples: 64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  simulated: mean CPI %.3f, peak power %.1fW\n", mathx.Mean(tr.CPI), mathx.Max(tr.Power))
	if mathx.Max(tr.Power) <= powerBudget*1.05 {
		fmt.Println("  ✓ the model-guided choice holds up under detailed simulation")
	} else {
		fmt.Println("  ✗ simulation exceeds the budget — model error at this point")
	}
}
