// paretosearch demonstrates the paper's end goal — *informed* design space
// exploration. After training on a few dozen simulated design points, the
// model sweeps thousands of candidate designs in milliseconds, extracts
// the CPI/power Pareto frontier, answers a constrained design question
// ("fastest machine whose worst-case power stays under budget"), and
// validates the chosen design against detailed simulation.
//
// Run: go run ./examples/paretosearch
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/mathx"
	"repro/internal/sim"
	"repro/internal/space"
)

const benchmark = "twolf"

func main() {
	// Both the training simulations and the model sweep run on the
	// pooled, cancellable engine: ^C aborts cleanly mid-campaign.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rng := mathx.NewRNG(11)
	opts := sim.Options{Instructions: 65536, Samples: 64}

	// Train CPI and power models from 40 simulated designs.
	train := space.SampleDesign(40, space.TrainLevels(), space.Baseline(), 10, rng)
	jobs := make([]sim.Job, len(train))
	for i, cfg := range train {
		jobs[i] = sim.Job{Config: cfg, Benchmark: benchmark}
	}
	fmt.Printf("simulating %d training designs of %s...\n", len(train), benchmark)
	traces, err := sim.SweepContext(ctx, jobs, opts, 0)
	if err != nil {
		log.Fatal(err)
	}
	cpiTraces := make([][]float64, len(train))
	powTraces := make([][]float64, len(train))
	for i, tr := range traces {
		cpiTraces[i] = tr.CPI
		powTraces[i] = tr.Power
	}
	mOpts := core.Options{NumCoefficients: 16}
	cpiModel, err := core.Train(train, cpiTraces, mOpts)
	if err != nil {
		log.Fatal(err)
	}
	powModel, err := core.Train(train, powTraces, mOpts)
	if err != nil {
		log.Fatal(err)
	}

	// Sweep the ENTIRE factorial training space (245,760 designs) through
	// the models on all cores, streaming candidates into a Pareto-frontier
	// collector and a constrained top-K selector so nothing but the
	// answers stays alive.
	designs := space.TrainLevels().FullFactorial(space.Baseline())
	models := []core.DynamicsModel{cpiModel, powModel}
	objectives := []explore.Objective{
		explore.MeanObjective("cpi"),
		explore.WorstCaseObjective("peak-power"),
	}
	const powerBudget = 60.0
	frontier := explore.NewFrontierCollector()
	top := explore.NewTopK(1, 0, []explore.Constraint{{Objective: 1, Max: powerBudget}})
	start := time.Now()
	err = explore.SweepStream(ctx, designs, models, objectives,
		explore.Options{}, frontier, top)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("swept %d designs through the models on %d workers in %v (%.0f designs/sec)\n\n",
		len(designs), runtime.GOMAXPROCS(0), elapsed.Round(time.Millisecond),
		float64(len(designs))/elapsed.Seconds())

	// Show the frontier.
	front := frontier.Frontier()
	fmt.Printf("Pareto frontier has %d of %d designs:\n", len(front), frontier.Seen())
	for _, c := range front {
		fmt.Printf("  cpi=%.4f peak-power=%.4f | %v\n", c.Scores[0], c.Scores[1], c.Config)
	}
	fmt.Println()

	// The constrained design question, answered by the streaming top-K.
	bests := top.Results()
	if len(bests) == 0 {
		log.Fatalf("no design meets the %.0fW worst-case budget", powerBudget)
	}
	best := bests[0]
	fmt.Printf("fastest design with predicted worst-case power ≤ %.0fW (%d of %d feasible):\n  %v\n",
		powerBudget, top.Feasible(), top.Seen(), best.Config)
	fmt.Printf("  predicted: mean CPI %.3f, peak power %.1fW\n", best.Scores[0], best.Scores[1])

	// Validate the model's pick with detailed simulation.
	tr, err := sim.Run(best.Config, benchmark, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  simulated: mean CPI %.3f, peak power %.1fW\n", mathx.Mean(tr.CPI), mathx.Max(tr.Power))
	if mathx.Max(tr.Power) <= powerBudget*1.05 {
		fmt.Println("  ✓ the model-guided choice holds up under detailed simulation")
	} else {
		fmt.Println("  ✗ simulation exceeds the budget — model error at this point")
	}
}
