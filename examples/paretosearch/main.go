// paretosearch demonstrates the paper's end goal — *informed* design space
// exploration. After training on a few dozen simulated design points, the
// model sweeps thousands of candidate designs in milliseconds, extracts
// the CPI/power Pareto frontier, answers a constrained design question
// ("fastest machine whose worst-case power stays under budget"), and
// validates the chosen design against detailed simulation.
//
// Run: go run ./examples/paretosearch
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/mathx"
	"repro/internal/sim"
	"repro/internal/space"
)

const benchmark = "twolf"

func main() {
	rng := mathx.NewRNG(11)
	opts := sim.Options{Instructions: 65536, Samples: 64}

	// Train CPI and power models from 40 simulated designs.
	train := space.SampleDesign(40, space.TrainLevels(), space.Baseline(), 10, rng)
	jobs := make([]sim.Job, len(train))
	for i, cfg := range train {
		jobs[i] = sim.Job{Config: cfg, Benchmark: benchmark}
	}
	fmt.Printf("simulating %d training designs of %s...\n", len(train), benchmark)
	traces, err := sim.Sweep(jobs, opts, 0)
	if err != nil {
		log.Fatal(err)
	}
	cpiTraces := make([][]float64, len(train))
	powTraces := make([][]float64, len(train))
	for i, tr := range traces {
		cpiTraces[i] = tr.CPI
		powTraces[i] = tr.Power
	}
	mOpts := core.Options{NumCoefficients: 16}
	cpiModel, err := core.Train(train, cpiTraces, mOpts)
	if err != nil {
		log.Fatal(err)
	}
	powModel, err := core.Train(train, powTraces, mOpts)
	if err != nil {
		log.Fatal(err)
	}

	// Sweep the ENTIRE factorial training space through the models.
	designs := space.TrainLevels().FullFactorial(space.Baseline())
	start := time.Now()
	res, err := explore.Sweep(designs,
		[]core.DynamicsModel{cpiModel, powModel},
		[]explore.Objective{
			explore.MeanObjective("cpi"),
			explore.WorstCaseObjective("peak-power"),
		})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("swept %d designs through the models in %v (%.0f designs/sec)\n\n",
		len(designs), elapsed.Round(time.Millisecond),
		float64(len(designs))/elapsed.Seconds())

	// Show a slice of the frontier.
	fmt.Println(res.Report())

	// A constrained design question.
	const powerBudget = 60.0
	best, ok := res.Best(0, []explore.Constraint{{Objective: 1, Max: powerBudget}})
	if !ok {
		log.Fatalf("no design meets the %.0fW worst-case budget", powerBudget)
	}
	fmt.Printf("fastest design with predicted worst-case power ≤ %.0fW:\n  %v\n", powerBudget, best.Config)
	fmt.Printf("  predicted: mean CPI %.3f, peak power %.1fW\n", best.Scores[0], best.Scores[1])

	// Validate the model's pick with detailed simulation.
	tr, err := sim.Run(best.Config, benchmark, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  simulated: mean CPI %.3f, peak power %.1fW\n", mathx.Mean(tr.CPI), mathx.Max(tr.Power))
	if mathx.Max(tr.Power) <= powerBudget*1.05 {
		fmt.Println("  ✓ the model-guided choice holds up under detailed simulation")
	} else {
		fmt.Println("  ✗ simulation exceeds the budget — model error at this point")
	}
}
