// coeffsweep studies the model complexity / accuracy tradeoff at the heart
// of Figure 9: how many wavelet coefficients (and therefore RBF networks)
// are worth modelling, and how much magnitude-based selection buys over
// order-based selection.
//
// Run: go run ./examples/coeffsweep
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/sim"
	"repro/internal/space"
)

func main() {
	// Simulations run on the pooled, cancellable engine: ^C aborts the
	// campaign cleanly instead of orphaning workers.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	const benchmark = "mcf" // memory-bound: strong dynamics
	rng := mathx.NewRNG(9)
	opts := sim.Options{Instructions: 65536, Samples: 64}

	train := space.SampleDesign(36, space.TrainLevels(), space.Baseline(), 8, rng)
	test := space.Random(8, space.TestLevels(), space.Baseline(), rng)

	var jobs []sim.Job
	for _, cfg := range append(append([]space.Config{}, train...), test...) {
		jobs = append(jobs, sim.Job{Config: cfg, Benchmark: benchmark})
	}
	fmt.Printf("simulating %d runs of %s...\n\n", len(jobs), benchmark)
	traces, err := sim.SweepContext(ctx, jobs, opts, 0)
	if err != nil {
		log.Fatal(err)
	}
	trainTraces := make([][]float64, len(train))
	for i := range train {
		trainTraces[i] = traces[i].CPI
	}

	evaluate := func(k int, sel core.Selection) float64 {
		model, err := core.Train(train, trainTraces, core.Options{
			NumCoefficients: k,
			Selection:       sel,
		})
		if err != nil {
			log.Fatal(err)
		}
		var sum float64
		for i, cfg := range test {
			actual := traces[len(train)+i].CPI
			sum += mathx.RelativeMSEPercent(actual, model.Predict(cfg))
		}
		return sum / float64(len(test))
	}

	fmt.Printf("%-6s %18s %18s %10s\n", "k", "magnitude MSE%", "order MSE%", "networks")
	for _, k := range []int{2, 4, 8, 16, 32, 64} {
		mag := evaluate(k, core.SelectMagnitude)
		ord := evaluate(k, core.SelectOrder)
		fmt.Printf("%-6d %17.2f%% %17.2f%% %10d\n", k, mag, ord, k)
	}
	fmt.Println("\nexpected shape (paper Figure 9 and §3): error falls steeply to k≈16,")
	fmt.Println("then flattens; magnitude-based selection is never worse than order-based.")
}
