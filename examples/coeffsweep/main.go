// coeffsweep studies the model complexity / accuracy tradeoff at the heart
// of Figure 9: how many wavelet coefficients (and therefore RBF networks)
// are worth modelling, and how much magnitude-based selection buys over
// order-based selection.
//
// Run: go run ./examples/coeffsweep
//
// With -daemon the locally tuned models are additionally cross-checked
// against a dsed daemon's served model on the same test designs through
// the typed /v1 client (the daemon's model complexity comes from its own
// -k flag, default 16 — the knee this study finds).
//
//	go run ./cmd/dsed -addr :8090 -benchmarks mcf &
//	go run ./examples/coeffsweep -daemon localhost:8090
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/wire"
	"repro/pkg/dsedclient"
)

func main() {
	daemon := flag.String("daemon", "", "also score the dsed daemon's served model at this address against the same test designs")
	flag.Parse()

	// Simulations run on the pooled, cancellable engine: ^C aborts the
	// campaign cleanly instead of orphaning workers.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	const benchmark = "mcf" // memory-bound: strong dynamics
	rng := mathx.NewRNG(9)
	opts := sim.Options{Instructions: 65536, Samples: 64}

	train := space.SampleDesign(36, space.TrainLevels(), space.Baseline(), 8, rng)
	test := space.Random(8, space.TestLevels(), space.Baseline(), rng)

	var jobs []sim.Job
	for _, cfg := range append(append([]space.Config{}, train...), test...) {
		jobs = append(jobs, sim.Job{Config: cfg, Benchmark: benchmark})
	}
	fmt.Printf("simulating %d runs of %s...\n\n", len(jobs), benchmark)
	traces, err := sim.SweepContext(ctx, jobs, opts, 0)
	if err != nil {
		log.Fatal(err)
	}
	trainTraces := make([][]float64, len(train))
	for i := range train {
		trainTraces[i] = traces[i].CPI
	}

	evaluate := func(k int, sel core.Selection) float64 {
		model, err := core.Train(train, trainTraces, core.Options{
			NumCoefficients: k,
			Selection:       sel,
		})
		if err != nil {
			log.Fatal(err)
		}
		var sum float64
		for i, cfg := range test {
			actual := traces[len(train)+i].CPI
			sum += mathx.RelativeMSEPercent(actual, model.Predict(cfg))
		}
		return sum / float64(len(test))
	}

	fmt.Printf("%-6s %18s %18s %10s\n", "k", "magnitude MSE%", "order MSE%", "networks")
	for _, k := range []int{2, 4, 8, 16, 32, 64} {
		mag := evaluate(k, core.SelectMagnitude)
		ord := evaluate(k, core.SelectOrder)
		fmt.Printf("%-6d %17.2f%% %17.2f%% %10d\n", k, mag, ord, k)
	}
	fmt.Println("\nexpected shape (paper Figure 9 and §3): error falls steeply to k≈16,")
	fmt.Println("then flattens; magnitude-based selection is never worse than order-based.")

	// Cross-check against a serving daemon: its model trained on its own
	// campaign (own designs, own -k), scored on this study's test set.
	if *daemon != "" {
		c := dsedclient.New(*daemon)
		specs := make([]wire.ConfigSpec, len(test))
		for i, cfg := range test {
			specs[i] = wire.SpecFromConfig(cfg)
		}
		batch, err := c.PredictBatch(ctx, wire.PredictRequest{
			Benchmark: benchmark, Metrics: []string{"CPI"},
			Configs: specs, IncludeTraces: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		var sum float64
		for i := range test {
			sum += mathx.RelativeMSEPercent(traces[len(train)+i].CPI, batch.Results[i][0].Trace)
		}
		fmt.Printf("\ndaemon %s served model: %.2f%% MSE on the same test designs\n", *daemon, sum/float64(len(test)))
	}
}
