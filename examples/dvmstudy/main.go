// dvmstudy reproduces the Section 5 workflow: use workload-dynamics
// prediction to evaluate a Dynamic Vulnerability Management (DVM) policy
// across candidate machine configurations *without* simulating each one.
//
// The study:
//  1. trains a DVM-aware IQ-AVF predictor (DVM on/off is an input feature),
//  2. sweeps a set of candidate configurations entirely through the model,
//  3. forecasts for each whether the DVM policy holds IQ AVF below target,
//  4. validates the forecasts against detailed simulation.
//
// Run: go run ./examples/dvmstudy
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stats"
)

const (
	benchmark = "gcc"
	target    = 0.3 // the DVM reliability target for IQ AVF
)

func main() {
	// Simulations run on the pooled, cancellable engine: ^C aborts the
	// campaign cleanly instead of orphaning workers.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rng := mathx.NewRNG(5)
	opts := sim.Options{Instructions: 65536, Samples: 64}

	// Training set: every sampled design with DVM off AND on, so the
	// model learns the policy's effect as a design parameter.
	base := space.SampleDesign(30, space.TrainLevels(), space.Baseline(), 10, rng)
	var train []space.Config
	for _, cfg := range base {
		off := cfg
		off.DVM, off.DVMThreshold = false, target
		on := cfg
		on.DVM, on.DVMThreshold = true, target
		train = append(train, off, on)
	}
	jobs := make([]sim.Job, len(train))
	for i, cfg := range train {
		jobs[i] = sim.Job{Config: cfg, Benchmark: benchmark}
	}
	fmt.Printf("simulating %d training runs (%s, DVM on/off pairs)...\n", len(jobs), benchmark)
	traces, err := sim.SweepContext(ctx, jobs, opts, 0)
	if err != nil {
		log.Fatal(err)
	}
	series := make([][]float64, len(traces))
	for i, tr := range traces {
		series[i] = tr.IQAVF
	}
	model, err := core.Train(train, series, core.Options{NumCoefficients: 16, UseDVMFeatures: true})
	if err != nil {
		log.Fatal(err)
	}

	// Candidate machines the architect is considering.
	candidates := []space.Config{
		space.Baseline(),
		space.Baseline().WithSweptValues([space.NumParams]int{8, 128, 96, 32, 1024, 12, 32, 32, 2}),
		space.Baseline().WithSweptValues([space.NumParams]int{2, 160, 32, 16, 256, 20, 8, 8, 4}),
		space.Baseline().WithSweptValues([space.NumParams]int{16, 160, 128, 64, 4096, 8, 64, 64, 1}),
	}

	fmt.Printf("\nforecasting DVM(target %.2f) outcomes for %d candidates:\n\n", target, len(candidates))
	agree := 0
	for i, cfg := range candidates {
		managed := cfg
		managed.DVM, managed.DVMThreshold = true, target

		pred := model.Predict(managed)
		predOK := exceedFrac(pred, target) <= 0.25

		// Validate against detailed simulation.
		tr, err := sim.Run(managed, benchmark, opts)
		if err != nil {
			log.Fatal(err)
		}
		actualOK := exceedFrac(tr.IQAVF, target) <= 0.25

		verdict := func(ok bool) string {
			if ok {
				return "meets target"
			}
			return "VIOLATES target"
		}
		match := "✓ forecast correct"
		if predOK == actualOK {
			agree++
		} else {
			match = "✗ forecast wrong"
		}
		fmt.Printf("candidate %d: %v\n", i+1, cfg)
		fmt.Printf("  forecast:   %s (peak %.3f)\n", verdict(predOK), mathx.Max(pred))
		fmt.Printf("  simulation: %s (peak %.3f)   %s\n", verdict(actualOK), mathx.Max(tr.IQAVF), match)
		fmt.Printf("  sim trace   %s\n\n", stats.Sparkline(tr.IQAVF))
	}
	fmt.Printf("forecast agreement: %d/%d candidates\n", agree, len(candidates))
}

// exceedFrac returns the fraction of samples at or above the threshold.
// A policy "meets target" when at most a quarter of execution periods
// exceed it (transient overshoot is inherent to the windowed trigger; see
// internal/experiments.Fig17).
func exceedFrac(trace []float64, thr float64) float64 {
	return float64(stats.ScenarioExceedances(trace, thr)) / float64(len(trace))
}
