// dvmstudy reproduces the Section 5 workflow: use workload-dynamics
// prediction to evaluate a Dynamic Vulnerability Management (DVM) policy
// across candidate machine configurations *without* simulating each one.
//
// The study:
//  1. trains a DVM-aware IQ-AVF predictor (DVM on/off is an input feature),
//  2. sweeps a set of candidate configurations entirely through the model,
//  3. forecasts for each whether the DVM policy holds IQ AVF below target,
//  4. validates the forecasts against detailed simulation.
//
// Run: go run ./examples/dvmstudy
//
// With -daemon the unmanaged IQ-AVF screening runs through a dsed
// daemon's served models over the typed /v1 client (one batch predict
// across the candidates) — the daemon's stock models do not encode the
// DVM policy as a feature, so the policy itself is then validated by
// local simulation, exactly like the local path. The daemon must serve
// the IQ_AVF metric:
//
//	go run ./cmd/dsed -addr :8090 -metrics CPI,IQ_AVF -benchmarks gcc &
//	go run ./examples/dvmstudy -daemon localhost:8090
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stats"
	"repro/internal/wire"
	"repro/pkg/dsedclient"
)

const (
	benchmark = "gcc"
	target    = 0.3 // the DVM reliability target for IQ AVF
)

func main() {
	daemon := flag.String("daemon", "", "screen candidates through the dsed daemon at this address instead of training locally")
	flag.Parse()

	// Simulations run on the pooled, cancellable engine: ^C aborts the
	// campaign cleanly instead of orphaning workers.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *daemon != "" {
		runDaemon(ctx, *daemon)
		return
	}

	rng := mathx.NewRNG(5)
	opts := sim.Options{Instructions: 65536, Samples: 64}

	// Training set: every sampled design with DVM off AND on, so the
	// model learns the policy's effect as a design parameter.
	base := space.SampleDesign(30, space.TrainLevels(), space.Baseline(), 10, rng)
	var train []space.Config
	for _, cfg := range base {
		off := cfg
		off.DVM, off.DVMThreshold = false, target
		on := cfg
		on.DVM, on.DVMThreshold = true, target
		train = append(train, off, on)
	}
	jobs := make([]sim.Job, len(train))
	for i, cfg := range train {
		jobs[i] = sim.Job{Config: cfg, Benchmark: benchmark}
	}
	fmt.Printf("simulating %d training runs (%s, DVM on/off pairs)...\n", len(jobs), benchmark)
	traces, err := sim.SweepContext(ctx, jobs, opts, 0)
	if err != nil {
		log.Fatal(err)
	}
	series := make([][]float64, len(traces))
	for i, tr := range traces {
		series[i] = tr.IQAVF
	}
	model, err := core.Train(train, series, core.Options{NumCoefficients: 16, UseDVMFeatures: true})
	if err != nil {
		log.Fatal(err)
	}

	// Candidate machines the architect is considering.
	candidates := candidateConfigs()

	fmt.Printf("\nforecasting DVM(target %.2f) outcomes for %d candidates:\n\n", target, len(candidates))
	agree := 0
	for i, cfg := range candidates {
		managed := cfg
		managed.DVM, managed.DVMThreshold = true, target

		pred := model.Predict(managed)
		predOK := exceedFrac(pred, target) <= 0.25

		// Validate against detailed simulation.
		tr, err := sim.Run(managed, benchmark, opts)
		if err != nil {
			log.Fatal(err)
		}
		actualOK := exceedFrac(tr.IQAVF, target) <= 0.25

		verdict := func(ok bool) string {
			if ok {
				return "meets target"
			}
			return "VIOLATES target"
		}
		match := "✓ forecast correct"
		if predOK == actualOK {
			agree++
		} else {
			match = "✗ forecast wrong"
		}
		fmt.Printf("candidate %d: %v\n", i+1, cfg)
		fmt.Printf("  forecast:   %s (peak %.3f)\n", verdict(predOK), mathx.Max(pred))
		fmt.Printf("  simulation: %s (peak %.3f)   %s\n", verdict(actualOK), mathx.Max(tr.IQAVF), match)
		fmt.Printf("  sim trace   %s\n\n", stats.Sparkline(tr.IQAVF))
	}
	fmt.Printf("forecast agreement: %d/%d candidates\n", agree, len(candidates))
}

// candidateConfigs is the shortlist the architect is considering.
func candidateConfigs() []space.Config {
	return []space.Config{
		space.Baseline(),
		space.Baseline().WithSweptValues([space.NumParams]int{8, 128, 96, 32, 1024, 12, 32, 32, 2}),
		space.Baseline().WithSweptValues([space.NumParams]int{2, 160, 32, 16, 256, 20, 8, 8, 4}),
		space.Baseline().WithSweptValues([space.NumParams]int{16, 160, 128, 64, 4096, 8, 64, 64, 1}),
	}
}

// runDaemon screens the candidates through a daemon's served IQ-AVF
// models (unmanaged — the stock daemon does not model the DVM policy),
// then validates the policy on each flagged candidate with local
// detailed simulation.
func runDaemon(ctx context.Context, addr string) {
	c := dsedclient.New(addr)
	candidates := candidateConfigs()
	specs := make([]wire.ConfigSpec, len(candidates))
	for i, cfg := range candidates {
		specs[i] = wire.SpecFromConfig(cfg)
	}
	fmt.Printf("screening %d candidates through %s (unmanaged IQ AVF)...\n\n", len(candidates), addr)
	batch, err := c.PredictBatch(ctx, wire.PredictRequest{
		Benchmark: benchmark, Metrics: []string{"IQ_AVF"},
		Configs: specs, IncludeTraces: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	opts := sim.Options{Instructions: 65536, Samples: 64}
	agree := 0
	for i, cfg := range candidates {
		pred := batch.Results[i][0].Trace
		// A candidate whose unmanaged vulnerability rarely crosses the
		// target needs no policy; the rest rely on DVM, validated by
		// simulating the managed machine.
		needsDVM := exceedFrac(pred, target) > 0.25
		managed := cfg
		managed.DVM, managed.DVMThreshold = true, target
		tr, err := sim.Run(managed, benchmark, opts)
		if err != nil {
			log.Fatal(err)
		}
		managedOK := exceedFrac(tr.IQAVF, target) <= 0.25
		if managedOK {
			agree++
		}
		fmt.Printf("candidate %d: %v\n", i+1, cfg)
		fmt.Printf("  daemon forecast (unmanaged): peak IQ AVF %.3f, needs DVM: %v\n", mathx.Max(pred), needsDVM)
		fmt.Printf("  simulation (managed):        peak IQ AVF %.3f, meets target: %v\n", mathx.Max(tr.IQAVF), managedOK)
		fmt.Printf("  sim trace   %s\n\n", stats.Sparkline(tr.IQAVF))
	}
	fmt.Printf("DVM holds the %.2f target on %d/%d candidates\n", target, agree, len(candidates))
}

// exceedFrac returns the fraction of samples at or above the threshold.
// A policy "meets target" when at most a quarter of execution periods
// exceed it (transient overshoot is inherent to the windowed trigger; see
// internal/experiments.Fig17).
func exceedFrac(trace []float64, thr float64) float64 {
	return float64(stats.ScenarioExceedances(trace, thr)) / float64(len(trace))
}
