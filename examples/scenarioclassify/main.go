// scenarioclassify demonstrates threshold-based workload execution
// scenario classification (paper Figures 12–13): given a power budget, the
// predictive model forecasts which execution periods will exceed it — the
// signal a proactive dynamic power manager would act on — and is scored
// with the directional-symmetry metric.
//
// Run: go run ./examples/scenarioclassify
//
// With -daemon the power forecasts come from a dsed daemon over the
// typed /v1 client (one batch predict for every test design) instead of
// a locally trained model; classification and scoring stay local.
//
//	go run ./cmd/dsed -addr :8090 -benchmarks gap &
//	go run ./examples/scenarioclassify -daemon localhost:8090
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/sim"
	"repro/internal/space"
	"repro/internal/stats"
	"repro/internal/wire"
	"repro/pkg/dsedclient"
)

func main() {
	daemon := flag.String("daemon", "", "forecast through the dsed daemon at this address instead of training locally")
	flag.Parse()

	// Simulations run on the pooled, cancellable engine: ^C aborts the
	// campaign cleanly instead of orphaning workers.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	const benchmark = "gap" // bursty power behaviour (GC sweeps)
	rng := mathx.NewRNG(21)
	opts := sim.Options{Instructions: 131072, Samples: 64}

	train := space.SampleDesign(60, space.TrainLevels(), space.Baseline(), 8, rng)
	test := space.Random(5, space.TestLevels(), space.Baseline(), rng)

	var jobs []sim.Job
	for _, cfg := range append(append([]space.Config{}, train...), test...) {
		jobs = append(jobs, sim.Job{Config: cfg, Benchmark: benchmark})
	}
	fmt.Printf("simulating %d runs of %s...\n\n", len(jobs), benchmark)
	traces, err := sim.SweepContext(ctx, jobs, opts, 0)
	if err != nil {
		log.Fatal(err)
	}
	// The forecaster: a locally trained model, or the daemon's served one
	// (fetched as full traces in a single batch predict).
	var predict func(i int, cfg space.Config) []float64
	if *daemon != "" {
		c := dsedclient.New(*daemon)
		specs := make([]wire.ConfigSpec, len(test))
		for i, cfg := range test {
			specs[i] = wire.SpecFromConfig(cfg)
		}
		fmt.Printf("forecasting through %s...\n", *daemon)
		batch, err := c.PredictBatch(ctx, wire.PredictRequest{
			Benchmark: benchmark, Metrics: []string{"Power"},
			Configs: specs, IncludeTraces: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		predict = func(i int, _ space.Config) []float64 { return batch.Results[i][0].Trace }
	} else {
		trainTraces := make([][]float64, len(train))
		for i := range train {
			trainTraces[i] = traces[i].Power
		}
		model, err := core.Train(train, trainTraces, core.Options{NumCoefficients: 16})
		if err != nil {
			log.Fatal(err)
		}
		predict = func(_ int, cfg space.Config) []float64 { return model.Predict(cfg) }
	}

	levels := []stats.ThresholdLevel{stats.Q1, stats.Q2, stats.Q3}
	fmt.Printf("%-8s %10s %12s %12s %12s\n", "design", "", "Q1", "Q2", "Q3")
	for i, cfg := range test {
		actual := traces[len(train)+i].Power
		pred := predict(i, cfg)

		fmt.Printf("design %d  actual    %s\n", i+1, stats.Sparkline(actual))
		fmt.Printf("          predicted %s\n", stats.Sparkline(pred))
		fmt.Printf("          1-DS:     ")
		for _, level := range levels {
			thr := stats.Threshold(actual, level)
			fmt.Printf("  %s=%.1f%% (thr %.1fW, %d/%d hot samples)",
				level, stats.DirectionalAsymmetry(actual, pred, thr), thr,
				stats.ScenarioExceedances(actual, thr), len(actual))
		}
		fmt.Println()
	}
	fmt.Println("\nlow directional asymmetry means the model flags the right execution")
	fmt.Println("periods, so a power manager driven by forecasts would trigger at the")
	fmt.Println("right times without over- or under-reacting (paper §4).")
}
